(* Robustness under injected faults: lossy links, scripted disk
   errors, at-least-once RPC with the duplicate-request cache, SA
   re-keying, and server crash/recovery. Everything is seeded and
   deterministic: a failure here reproduces byte-for-byte. *)

module Clock = Simnet.Clock
module Stats = Simnet.Stats
module Link = Simnet.Link
module Fault = Simnet.Fault
module Rpc = Oncrpc.Rpc
module Proto = Nfs.Proto
module Deploy = Discfs.Deploy
module Client = Discfs.Client
module Server = Discfs.Server

(* --- link-level fault actions ---------------------------------------- *)

let test_link_fault_actions () =
  let clock = Clock.create () in
  let stats = Stats.create () in
  let link = Link.create ~clock ~cost:Simnet.Cost.default ~stats in
  let fault = Fault.create ~seed:"link-unit" () in
  Link.set_fault link (Some fault);
  Fault.set_net fault { Fault.drop = 1.0; duplicate = 0.0; reorder = 0.0; corrupt = 0.0 };
  Alcotest.(check (list string)) "dropped" [] (Link.send link "hello");
  Alcotest.(check int) "drop counted" 1 (Stats.get stats "link.drops");
  Fault.set_net fault { Fault.drop = 0.0; duplicate = 1.0; reorder = 0.0; corrupt = 0.0 };
  Alcotest.(check (list string)) "duplicated" [ "hello"; "hello" ] (Link.send link "hello");
  Fault.set_net fault { Fault.drop = 0.0; duplicate = 0.0; reorder = 0.0; corrupt = 1.0 };
  (match Link.send link "hello" with
  | [ p ] ->
    Alcotest.(check int) "corrupt keeps length" 5 (String.length p);
    Alcotest.(check bool) "corrupt changes bytes" true (p <> "hello")
  | l -> Alcotest.failf "corrupt delivered %d packets" (List.length l));
  (* Reorder: the packet is held and released behind the next packet
     on the same flow; other flows are unaffected. *)
  Fault.set_net fault { Fault.drop = 0.0; duplicate = 0.0; reorder = 1.0; corrupt = 0.0 };
  Alcotest.(check (list string)) "held" [] (Link.send link ~flow:3 "first");
  Alcotest.(check (list string)) "released behind successor" [ "second"; "first" ]
    (Link.send link ~flow:3 "second");
  Fault.set_net fault Fault.no_net;
  Alcotest.(check (list string)) "other flow clean" [ "x" ] (Link.send link ~flow:9 "x")

(* --- scripted disk faults --------------------------------------------- *)

let test_blockdev_scripted_faults () =
  let clock = Clock.create () in
  let stats = Stats.create () in
  let dev =
    Ffs.Blockdev.create ~clock ~cost:Simnet.Cost.default ~stats ~nblocks:16 ~block_size:512 ()
  in
  let fault = Fault.create ~seed:"disk-unit" () in
  Ffs.Blockdev.set_fault dev (Some fault);
  let block = Bytes.make 512 'a' in
  Ffs.Blockdev.write dev 3 block (* op 0 *);
  Fault.script_disk fault
    [ (1, Fault.Fail_read); (3, Fault.Corrupt_read); (4, Fault.Fail_write) ];
  (match Ffs.Blockdev.read dev 3 (* op 1 *) with
  | exception Ffs.Blockdev.Io_error _ -> ()
  | _ -> Alcotest.fail "scripted read fault did not fire");
  Alcotest.(check string) "clean read between faults" (Bytes.to_string block)
    (Bytes.to_string (Ffs.Blockdev.read dev 3 (* op 2 *)));
  Alcotest.(check bool) "corrupt read differs" true
    (Bytes.to_string (Ffs.Blockdev.read dev 3 (* op 3 *)) <> Bytes.to_string block);
  (match Ffs.Blockdev.write dev 3 (Bytes.make 512 'b') (* op 4 *) with
  | exception Ffs.Blockdev.Io_error _ -> ()
  | () -> Alcotest.fail "scripted write fault did not fire");
  (* The failed write did not reach the platter. *)
  Alcotest.(check string) "block intact after failed write" (Bytes.to_string block)
    (Bytes.to_string (Ffs.Blockdev.read dev 3 (* op 5 *)));
  Alcotest.(check int) "io errors counted" 2 (Stats.get stats "disk.io_errors")

(* --- replay window: model-based property ------------------------------ *)

let prop_replay_window_model =
  (* Reference model: a sequence number is accepted exactly once, and
     only while it is within 62 of the highest number seen. *)
  QCheck.Test.make ~name:"replay window matches reference model" ~count:300
    (QCheck.make QCheck.Gen.(list_size (int_range 1 200) (int_range 0 150)))
    (fun seqs ->
      let clock = Clock.create () in
      let stats = Stats.create () in
      let sa =
        Ipsec.Sa.create ~clock ~cost:Simnet.Cost.default ~stats ~spi:1
          ~key:(String.make 32 'k') ()
      in
      let top = ref 0 in
      let seen = Hashtbl.create 64 in
      let model seq =
        if seq <= 0 then false
        else if Hashtbl.mem seen seq then false
        else if seq > !top then begin
          Hashtbl.replace seen seq ();
          top := seq;
          true
        end
        else if !top - seq >= 63 then false
        else begin
          Hashtbl.replace seen seq ();
          true
        end
      in
      List.for_all (fun seq -> Ipsec.Sa.replay_check sa seq = model seq) seqs)

(* --- duplicate-request cache ------------------------------------------ *)

let all_duplicates = { Fault.drop = 0.0; duplicate = 1.0; reorder = 0.0; corrupt = 0.0 }

let root_listing fs =
  List.filter_map
    (fun (name, ino) ->
      if name = "." || name = ".." then None
      else begin
        let attr = Ffs.Fs.getattr fs ino in
        Some (name, Ffs.Fs.read fs ino ~off:0 ~len:attr.Ffs.Inode.a_size)
      end)
    (Ffs.Fs.readdir fs (Ffs.Fs.root fs))
  |> List.sort compare

let test_drc_dedups_duplicates () =
  (* Plaintext NFS with every datagram doubled: the server sees each
     request twice and must execute it once, answering the copy from
     the duplicate-request cache. *)
  let d = Cfs.Cfs_ne.deploy () in
  let nfs, root = Cfs.Cfs_ne.connect d () in
  let fault = Fault.create ~net:all_duplicates ~seed:"drc-unit" () in
  Link.set_fault d.Cfs.Cfs_ne.link (Some fault);
  let fh, _ = Nfs.Client.create_file nfs root "once" Proto.sattr_none in
  ignore (Nfs.Client.write nfs fh ~off:0 "payload");
  Nfs.Client.remove nfs root "once";
  Alcotest.(check int) "every duplicate hit the cache" 3 (Rpc.drc_hits d.Cfs.Cfs_ne.rpc);
  Alcotest.(check (list (pair string string))) "final state clean" []
    (root_listing d.Cfs.Cfs_ne.fs)

type op = OpCreate of int | OpRemove of int | OpWrite of int * string

let gen_ops =
  QCheck.Gen.(
    list_size (int_range 1 12)
      (map2
         (fun kind (n, data) ->
           match kind with
           | 0 -> OpCreate n
           | 1 -> OpRemove n
           | _ -> OpWrite (n, data))
         (int_bound 2)
         (pair (int_bound 3) small_string)))

let apply_ops ~net ops =
  let d = Cfs.Cfs_ne.deploy ~nblocks:512 ~ninodes:64 () in
  let nfs, root = Cfs.Cfs_ne.connect d () in
  (match net with
  | None -> ()
  | Some net -> Link.set_fault d.Cfs.Cfs_ne.link (Some (Fault.create ~net ~seed:"drc-prop" ())));
  let name n = Printf.sprintf "f%d" n in
  List.iter
    (fun op ->
      try
        match op with
        | OpCreate n -> ignore (Nfs.Client.create_file nfs root (name n) Proto.sattr_none)
        | OpRemove n -> Nfs.Client.remove nfs root (name n)
        | OpWrite (n, data) ->
          let fh =
            try fst (Nfs.Client.lookup nfs root (name n))
            with Proto.Nfs_error _ ->
              fst (Nfs.Client.create_file nfs root (name n) Proto.sattr_none)
          in
          ignore (Nfs.Client.write nfs fh ~off:0 data)
      with Proto.Nfs_error _ -> ())
    ops;
  (root_listing d.Cfs.Cfs_ne.fs, d)

let prop_drc_idempotent =
  (* Non-idempotent schedules (CREATE/REMOVE/WRITE) under heavy
     duplication must leave the filesystem in exactly the state a
     clean network produces. *)
  QCheck.Test.make ~name:"duplicated schedules leave identical fs state" ~count:30
    (QCheck.make gen_ops) (fun ops ->
      let clean, _ = apply_ops ~net:None ops in
      let faulty, d = apply_ops ~net:(Some { all_duplicates with Fault.duplicate = 0.5 }) ops in
      let dups = Stats.get d.Cfs.Cfs_ne.stats "link.dups" in
      let hits = Rpc.drc_hits d.Cfs.Cfs_ne.rpc in
      clean = faulty && hits <= dups)

(* --- DRC eviction under capacity pressure ----------------------------- *)

let test_drc_lru_eviction () =
  (* Drive the server at the wire level with hand-picked xids so we
     control exactly which DRC entries exist. Capacity 4; a hit must
     refresh an entry's LRU position, and an evicted entry must be
     re-executed (at-least-once semantics) with an identical reply. *)
  let clock = Clock.create () in
  let stats = Stats.create () in
  let srv = Rpc.server ~clock ~cost:Simnet.Cost.default ~stats in
  Rpc.set_drc_capacity srv 4;
  let executions = Hashtbl.create 8 in
  Rpc.register srv ~prog:7 ~vers:1 (fun ~conn:_ ~proc ~args ->
      let n = try Hashtbl.find executions proc with Not_found -> 0 in
      Hashtbl.replace executions proc (n + 1);
      Ok (Printf.sprintf "reply-%d:%s" proc args));
  let conn = { Rpc.peer = "client-1"; uid = 0 } in
  let call xid =
    match Rpc.dispatch srv ~conn (Rpc.encode_call ~xid ~prog:7 ~vers:1 ~proc:xid ~uid:0 "x") with
    | None -> Alcotest.fail "server dropped a well-formed call"
    | Some datagram ->
      let rxid, result = Rpc.decode_reply datagram in
      Alcotest.(check int) "xid echoed" xid rxid;
      (match result with
      | Ok body -> body
      | Error _ -> Alcotest.fail "unexpected RPC-level error")
  in
  let execs proc = try Hashtbl.find executions proc with Not_found -> 0 in
  (* Fill the cache: A=1 B=2 C=3 D=4 (LRU order A..D). *)
  let reply_a = call 1 in
  List.iter (fun xid -> ignore (call xid)) [ 2; 3; 4 ];
  Alcotest.(check int) "no eviction at capacity" 0 (Stats.get stats "rpc.drc_evictions");
  (* Replay A: answered from cache, and A moves to most-recently-used. *)
  Alcotest.(check string) "cached reply is byte-identical" reply_a (call 1);
  Alcotest.(check int) "hit did not re-execute" 1 (execs 1);
  Alcotest.(check int) "one DRC hit" 1 (Rpc.drc_hits srv);
  (* E pushes the cache past capacity: B (now least recent) goes, not A. *)
  ignore (call 5);
  Alcotest.(check int) "one eviction" 1 (Stats.get stats "rpc.drc_evictions");
  Alcotest.(check string) "A survived (refreshed by the hit)" reply_a (call 1);
  Alcotest.(check int) "A still executed once" 1 (execs 1);
  (* B was evicted: its retransmission re-executes, reply unchanged. *)
  let reply_b = call 2 in
  Alcotest.(check int) "evicted entry re-executed" 2 (execs 2);
  Alcotest.(check string) "re-execution gives the same reply" "reply-2:x" reply_b;
  (* Shrinking capacity evicts immediately, oldest first. *)
  Rpc.set_drc_capacity srv 1;
  Alcotest.(check int) "shrink evicts down to capacity" 5
    (Stats.get stats "rpc.drc_evictions");
  (* Capacity 0 disables caching entirely: every retransmit re-executes. *)
  Rpc.set_drc_capacity srv 0;
  ignore (call 6);
  ignore (call 6);
  Alcotest.(check int) "no caching at capacity 0" 2 (execs 6)

(* --- ESP boundary: corrupted packets are dropped, not fatal ----------- *)

let test_esp_corruption_dropped () =
  let fault =
    Fault.create
      ~net:{ Fault.drop = 0.0; duplicate = 0.0; reorder = 0.0; corrupt = 0.25 }
      ~seed:"esp-corrupt" ()
  in
  let d = Deploy.make ~seed:"esp-corrupt" ~fault () in
  (* A quarter of packets corrupted means ~44% of attempts fail; give
     the client enough retransmissions to ride it out. *)
  let retry = { Rpc.default_retry with Rpc.max_attempts = 12 } in
  let alice = Deploy.attach d ~identity:d.Deploy.admin ~uid:0 ~retry () in
  let root = Client.root alice in
  let fh, _, _ = Client.create alice ~dir:root "noisy.txt" () in
  Nfs.Client.write_all (Client.nfs alice) fh "intact despite the noise";
  for _ = 1 to 20 do
    let _, data = Nfs.Client.read (Client.nfs alice) fh ~off:0 ~count:100 in
    Alcotest.(check string) "reads stay correct" "intact despite the noise" data
  done;
  let get k = Stats.get d.Deploy.stats k in
  Alcotest.(check bool) "corruptions occurred" true (get "link.corruptions" > 0);
  Alcotest.(check bool) "boundary dropped bad packets" true
    (get "rpc.server_rx_drops" + get "rpc.client_rx_drops" > 0);
  Alcotest.(check bool) "client retried through it" true (get "rpc.retransmits" > 0)

(* --- SA soft lifetime and abbreviated rekey --------------------------- *)

let test_ike_rekey () =
  let clock = Clock.create () in
  let stats = Stats.create () in
  let link = Link.create ~clock ~cost:Simnet.Cost.default ~stats in
  let drbg = Dcrypto.Drbg.create ~seed:"rekey-unit" in
  let initiator = Dcrypto.Dsa.generate_key drbg in
  let responder = Dcrypto.Dsa.generate_key drbg in
  let c, s = Ipsec.Ike.establish ~link ~drbg ~initiator ~responder ~lifetime:4 () in
  Alcotest.(check bool) "fresh sa not expired" false (Ipsec.Sa.soft_expired c.Ipsec.Ike.tx);
  for _ = 1 to 4 do
    ignore (Ipsec.Esp.seal c.Ipsec.Ike.tx "tick")
  done;
  Alcotest.(check bool) "soft-expired at lifetime" true (Ipsec.Sa.soft_expired c.Ipsec.Ike.tx);
  let t0 = Clock.now clock in
  let c2, s2 = Ipsec.Ike.rekey ~link ~drbg ~client:c ~server:s () in
  let rekey_time = Clock.now clock -. t0 in
  Alcotest.(check bool) "new tx key" true
    (not
       (Dcrypto.Secret.equal (Ipsec.Sa.key c2.Ipsec.Ike.tx) (Ipsec.Sa.key c.Ipsec.Ike.tx)));
  Alcotest.(check string) "peer preserved" c.Ipsec.Ike.peer c2.Ipsec.Ike.peer;
  Alcotest.(check int) "lifetime carried over" 4 (Ipsec.Sa.lifetime c2.Ipsec.Ike.tx);
  let pkt = Ipsec.Esp.seal c2.Ipsec.Ike.tx "fresh keys" in
  Alcotest.(check string) "new SAs interoperate" "fresh keys"
    (Ipsec.Esp.open_ s2.Ipsec.Ike.rx pkt);
  Alcotest.(check int) "rekey counted" 1 (Stats.get stats "ike.rekeys");
  (* Quick mode is cheap: no public-key operations. *)
  let t1 = Clock.now clock in
  ignore (Ipsec.Ike.establish ~link ~drbg ~initiator ~responder ());
  let handshake_time = Clock.now clock -. t1 in
  Alcotest.(check bool) "much cheaper than main mode" true
    (rekey_time < handshake_time /. 5.0)

let test_client_auto_rekey () =
  (* A client attached with a small SA lifetime re-keys transparently
     mid-workload; traffic is uninterrupted. *)
  let d = Deploy.make ~seed:"auto-rekey" () in
  let alice = Deploy.attach d ~identity:d.Deploy.admin ~uid:0 ~sa_lifetime:6 () in
  let root = Client.root alice in
  let fh, _, _ = Client.create alice ~dir:root "r.txt" () in
  Nfs.Client.write_all (Client.nfs alice) fh "rekey survives";
  for _ = 1 to 15 do
    let _, data = Nfs.Client.read (Client.nfs alice) fh ~off:0 ~count:100 in
    Alcotest.(check string) "content across rekeys" "rekey survives" data
  done;
  Alcotest.(check bool) "rekeys happened" true (Stats.get d.Deploy.stats "ike.rekeys" >= 2)

(* --- disk faults surface as NFS EIO ----------------------------------- *)

let test_disk_fault_maps_to_eio () =
  let fault = Fault.create ~seed:"disk-eio" () in
  let d = Deploy.make ~seed:"disk-eio" ~fault () in
  let alice = Deploy.attach d ~identity:d.Deploy.admin ~uid:0 () in
  let root = Client.root alice in
  let fh, _, _ = Client.create alice ~dir:root "frail.txt" () in
  Nfs.Client.write_all (Client.nfs alice) fh "fragile data";
  Fault.script_disk fault [ (Fault.disk_ops fault, Fault.Fail_read) ];
  (match Nfs.Client.read (Client.nfs alice) fh ~off:0 ~count:100 with
  | exception Proto.Nfs_error e -> Alcotest.(check int) "EIO" Proto.nfserr_io e
  | _ -> Alcotest.fail "scripted disk fault did not surface");
  (* The dispatch loop survived; the next read is clean. *)
  let _, data = Nfs.Client.read (Client.nfs alice) fh ~off:0 ~count:100 in
  Alcotest.(check string) "healthy after the error" "fragile data" data

(* --- end-to-end: 5% loss + mid-run server crash ----------------------- *)

(* A fig12-style workload: build a small source tree over NFS, then
   walk it reading every file. The faulty run must produce the exact
   bytes the fault-free run does. *)

let e2e_tree =
  List.concat_map
    (fun d ->
      List.map
        (fun f ->
          let name = Printf.sprintf "src_%d_%d.c" d f in
          let line = Printf.sprintf "int var_%d_%d = %d;\n" d f ((d * 31) + f) in
          let buf = Buffer.create 2048 in
          for _ = 1 to 40 + (d * 7) + f do
            Buffer.add_string buf line
          done;
          (Printf.sprintf "sys%d" d, name, Buffer.contents buf))
        [ 0; 1; 2; 3 ])
    [ 0; 1; 2 ]

let run_e2e ~lossy ~crash_at () =
  let fault = Fault.create ~seed:"e2e-fault" () in
  let d = Deploy.make ~seed:"e2e" ~fault () in
  let alice = Deploy.attach d ~identity:d.Deploy.admin ~uid:0 () in
  let nfs () = Client.nfs alice in
  (* Build the tree over NFS on a clean network. *)
  let dirs = Hashtbl.create 4 in
  List.iter
    (fun (dir, file, content) ->
      let dfh =
        match Hashtbl.find_opt dirs dir with
        | Some fh -> fh
        | None ->
          let fh, _ = Nfs.Client.mkdir (nfs ()) (Client.root alice) dir Proto.sattr_none in
          Hashtbl.replace dirs dir fh;
          fh
      in
      let fh, _ = Nfs.Client.create_file (nfs ()) dfh file Proto.sattr_none in
      Nfs.Client.write_all (nfs ()) fh content)
    e2e_tree;
  if lossy then Fault.set_net fault (Fault.lossy 0.05);
  (* The measured walk; optionally the server dies partway through. *)
  let results =
    List.mapi
      (fun i (dir, file, _) ->
        if crash_at = Some i then Deploy.crash_and_restart d;
        let read_one () =
          let dfh, _ = Nfs.Client.lookup (nfs ()) (Client.root alice) dir in
          let fh, _ = Nfs.Client.lookup (nfs ()) dfh file in
          Nfs.Client.read_all (nfs ()) fh
        in
        let data =
          try read_one ()
          with Rpc.Rpc_timeout _ ->
            (* Server not responding: re-attach to the new incarnation
               (fresh IKE + MOUNT, in-flight op replayed) and redo. *)
            Client.reattach alice ~rpc:d.Deploy.rpc ~server:d.Deploy.server ();
            read_one ()
        in
        (dir, file, data))
      e2e_tree
  in
  (results, d)

let test_e2e_loss_and_crash () =
  let clean, _ = run_e2e ~lossy:false ~crash_at:None () in
  List.iter2
    (fun (_, _, expect) (dir, file, got) ->
      if expect <> got then Alcotest.failf "clean run corrupted %s/%s" dir file)
    e2e_tree clean;
  let faulty, d = run_e2e ~lossy:true ~crash_at:(Some 6) () in
  Alcotest.(check bool) "byte-identical to fault-free run" true (clean = faulty);
  let get k = Stats.get d.Deploy.stats k in
  Alcotest.(check bool) "packets were dropped" true (get "link.drops" > 0);
  Alcotest.(check bool) "client retransmitted" true (get "rpc.retransmits" > 0);
  Alcotest.(check int) "exactly one restart" 1 (get "server.restarts");
  Alcotest.(check bool) "audit trail survived the crash" true
    (List.length (Server.audit_log d.Deploy.server) > 0)

(* --- lossy profile normalization (regression) ------------------------- *)

(* Before the fix, [lossy p] for p > 4/7 pushed the raw probability
   sum past 1.0; the cascade (drop, then duplicate, then reorder,
   then corrupt) consumed the probability mass in order, so Corrupt —
   last in line — was starved down to nothing while drop stayed at
   its nominal rate. The profile is now scaled back onto the simplex,
   preserving the 4:1:1:1 ratio. *)
let test_lossy_normalized () =
  let n = Fault.lossy 0.8 in
  let sum = n.Fault.drop +. n.Fault.duplicate +. n.Fault.reorder +. n.Fault.corrupt in
  Alcotest.(check (float 1e-9)) "p=0.8 scaled onto the simplex" 1.0 sum;
  Alcotest.(check (float 1e-9)) "4:1 drop/corrupt ratio kept" 4.0
    (n.Fault.drop /. n.Fault.corrupt);
  let m = Fault.lossy 0.4 in
  Alcotest.(check (float 1e-9)) "p=0.4 already feasible: untouched" 0.4 m.Fault.drop;
  Alcotest.(check (float 1e-9)) "p=0.4 corrupt untouched" 0.1 m.Fault.corrupt;
  Alcotest.check_raises "p outside [0,1] rejected"
    (Invalid_argument "Fault.lossy: p outside [0, 1]") (fun () -> ignore (Fault.lossy 1.5));
  (* With p = 1.0 every packet must still draw a fault — and Corrupt
     must actually occur, which the un-normalized cascade never let
     happen. *)
  let f = Fault.create ~net:(Fault.lossy 1.0) ~seed:"lossy-sat" () in
  let seen = Hashtbl.create 4 in
  for _ = 1 to 500 do
    let a = Fault.net_decide f in
    Hashtbl.replace seen a ();
    if a = Fault.Deliver then Alcotest.fail "p=1 delivered a packet intact"
  done;
  Alcotest.(check bool) "corrupt no longer starved" true (Hashtbl.mem seen Fault.Corrupt)

let prop_lossy_simplex =
  QCheck.Test.make ~name:"lossy profiles stay on the probability simplex" ~count:200
    (QCheck.make ~print:string_of_float QCheck.Gen.(float_bound_inclusive 1.0))
    (fun p ->
      let n = Fault.lossy p in
      let sum = n.Fault.drop +. n.Fault.duplicate +. n.Fault.reorder +. n.Fault.corrupt in
      sum <= 1.0 +. 1e-9
      && n.Fault.drop >= 0.0 && n.Fault.duplicate >= 0.0
      && n.Fault.reorder >= 0.0 && n.Fault.corrupt >= 0.0)

(* --- Rng.int_below modulo bias (regression) --------------------------- *)

let test_int_below_unbiased () =
  (* n = 3 * 2^60 against 63-bit raw draws: 2^63 mod n = 2^61, so the
     old plain-modulo reduction hit [0, 2^61) three times for every
     two hits on [2^61, 3*2^60) — P(x < 2^61) was 0.75 instead of the
     uniform 2/3. Rejection sampling brings it back: with 4000 draws
     the biased estimator concentrates near 3000, the unbiased one
     near 2667. *)
  let rng = Fault.Rng.create ~seed:"bias-sat" in
  let n = 3 * (1 lsl 60) in
  let threshold = 1 lsl 61 in
  let below = ref 0 in
  for _ = 1 to 4000 do
    let x = Fault.Rng.int_below rng n in
    if x < 0 || x >= n then Alcotest.fail "int_below out of range";
    if x < threshold then incr below
  done;
  Alcotest.(check bool)
    (Printf.sprintf "no modulo bias (%d/4000 below 2^61, biased ~3000)" !below)
    true
    (!below < 2820);
  (* Small bounds stay uniform too: n = 7 over 7000 draws, every
     residue within 10%% of the expected 1000. *)
  let buckets = Array.make 7 0 in
  for _ = 1 to 7000 do
    let x = Fault.Rng.int_below rng 7 in
    buckets.(x) <- buckets.(x) + 1
  done;
  Array.iteri
    (fun i c ->
      if c < 900 || c > 1100 then Alcotest.failf "residue %d drawn %d times (expected ~1000)" i c)
    buckets

(* --- reorder hold slots flushed on quiesce (regression) --------------- *)

let test_quiesce_flushes_held_packets () =
  let clock = Clock.create () in
  let stats = Stats.create () in
  let link = Link.create ~clock ~cost:Simnet.Cost.default ~stats in
  let fault = Fault.create ~seed:"quiesce-unit" () in
  Link.set_fault link (Some fault);
  Fault.set_net fault { Fault.drop = 0.0; duplicate = 0.0; reorder = 1.0; corrupt = 0.0 };
  Alcotest.(check (list string)) "packet parked in the hold slot" []
    (Link.send link ~flow:3 "held");
  Alcotest.(check int) "one packet flushed" 1 (Link.quiesce link);
  Alcotest.(check int) "accounted under quiesce drops" 1
    (Stats.get stats "link.quiesce_drops");
  Alcotest.(check bool) "and under total drops" true (Stats.get stats "link.drops" >= 1);
  Alcotest.(check (float 1e-9)) "flow wire marked idle" 0.0 (Link.busy_until link 3);
  Alcotest.(check int) "nothing left to flush" 0 (Link.quiesce link);
  (* The packet is really gone: the next send on the flow is not
     preceded by the stale hold. *)
  Fault.set_net fault Fault.no_net;
  Alcotest.(check (list string)) "held packet did not resurface" [ "fresh" ]
    (Link.send link ~flow:3 "fresh")

let test_crash_flushes_held_packets () =
  (* End to end: a packet parked for reordering when the server
     crashes must die with it — before the fix it lingered invisibly
     into the next incarnation, neither delivered nor counted. *)
  let fault = Fault.create ~seed:"crash-flush" () in
  let d = Deploy.make ~fault ~seed:"crash-flush-deploy" () in
  let alice = Deploy.attach d ~identity:d.Deploy.admin ~uid:0 () in
  ignore alice;
  Fault.set_net fault { Fault.drop = 0.0; duplicate = 0.0; reorder = 1.0; corrupt = 0.0 };
  Alcotest.(check (list string)) "packet held at crash time" []
    (Link.send d.Deploy.link ~flow:5 "in-flight");
  Fault.set_net fault Fault.no_net;
  Deploy.crash_and_restart d;
  Alcotest.(check int) "held packet flushed as a drop" 1
    (Stats.get d.Deploy.stats "link.quiesce_drops")

let suite =
  [
    Alcotest.test_case "link fault actions" `Quick test_link_fault_actions;
    Alcotest.test_case "scripted disk faults" `Quick test_blockdev_scripted_faults;
    QCheck_alcotest.to_alcotest prop_replay_window_model;
    Alcotest.test_case "drc dedups duplicated requests" `Quick test_drc_dedups_duplicates;
    QCheck_alcotest.to_alcotest prop_drc_idempotent;
    Alcotest.test_case "drc lru eviction" `Quick test_drc_lru_eviction;
    Alcotest.test_case "esp corruption dropped at boundary" `Quick test_esp_corruption_dropped;
    Alcotest.test_case "ike abbreviated rekey" `Quick test_ike_rekey;
    Alcotest.test_case "client auto-rekey at soft lifetime" `Quick test_client_auto_rekey;
    Alcotest.test_case "disk fault maps to EIO" `Quick test_disk_fault_maps_to_eio;
    Alcotest.test_case "e2e: 5% loss + server crash" `Quick test_e2e_loss_and_crash;
    Alcotest.test_case "lossy profile normalized onto simplex" `Quick test_lossy_normalized;
    QCheck_alcotest.to_alcotest prop_lossy_simplex;
    Alcotest.test_case "int_below has no modulo bias" `Quick test_int_below_unbiased;
    Alcotest.test_case "quiesce flushes reorder holds" `Quick
      test_quiesce_flushes_held_packets;
    Alcotest.test_case "crash flushes held packets" `Quick test_crash_flushes_held_packets;
  ]
