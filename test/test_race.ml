(* The dynamic half of the race detector, bottom-up.

   Unit tests drive Race directly on a bare scheduler: the synthetic
   two-process check-then-act the checker must catch (with process,
   epoch and label context), the value-aware benign classification,
   the wipe semantics, and the null monitor's do-nothing contract.

   Integration tests arm `Deploy.make ~racecheck:true` and replay the
   two known-delicate windows as golden atomicity proofs: the pooled
   concurrent workload (DRC coalescing + bcache fills under
   readahead) and a churn run with retransmitting retries and a
   mid-run crash must both finish with zero reports while the access
   counter proves the instrumentation was live.

   Schedule exploration: QCheck properties assert that N tie-seed
   perturbations of the figure-12-style walk (boot storm) and a
   crashless churn leave the logical end state byte-identical, and
   that a disabled tie seed preserves FIFO order exactly. *)

module Clock = Simnet.Clock
module Sched = Simnet.Sched
module Deploy = Discfs.Deploy
module Client = Discfs.Client

let mk_sched () =
  let clock = Clock.create () in
  let s = Sched.create ~clock in
  Sched.attach_clock s;
  s

let mk_ctx ?annotate s =
  Race.create ?annotate
    ~pid:(fun () -> Sched.current_pid s)
    ~epoch:(fun () -> Sched.events_run s)
    ()

let contains msg hay sub =
  let n = String.length sub and m = String.length hay in
  let rec go i = i + n <= m && (String.sub hay i n = sub || go (i + 1)) in
  Alcotest.(check bool) msg true (go 0)

(* --- the checker itself ---------------------------------------------- *)

let test_synthetic_check_then_act () =
  let s = mk_sched () in
  let ctx = mk_ctx s in
  let mon = Race.monitor ctx "fixture" in
  Alcotest.(check bool) "monitor live" true (Race.enabled mon);
  (* discfs-lint: allow races "the deliberate race under test: the checker itself is the mediation being exercised" *)
  Sched.spawn s (fun () ->
      Race.note mon "reader proc";
      Race.check mon ~key:"slot";
      Sched.sleep s 1.0;
      (* the check-then-act window spans the sleep's yield *)
      Race.act mon ~key:"slot" ());
  (* discfs-lint: allow races "the deliberate race under test: this process supplies the intervening write" *)
  Sched.spawn s (fun () ->
      Race.note mon "writer proc";
      Sched.sleep s 0.5;
      Race.write mon ~key:"slot" ());
  Sched.run s;
  Alcotest.(check int) "exactly one report" 1 (Race.total_reports ctx);
  Alcotest.(check bool) "accesses counted" true (Race.accesses ctx > 0);
  match Race.reports ctx with
  | [ r ] ->
    Alcotest.(check string) "structure named" "fixture" r.Race.r_structure;
    Alcotest.(check string) "key named" "slot" r.Race.r_key;
    Alcotest.(check bool) "check and write from different processes" true
      (r.Race.r_check.Race.a_pid <> r.Race.r_write.Race.a_pid);
    Alcotest.(check bool) "write strictly after the check" true
      (r.Race.r_write.Race.a_epoch > r.Race.r_check.Race.a_epoch);
    Alcotest.(check bool) "act closes at or after the write" true
      (r.Race.r_act_epoch >= r.Race.r_write.Race.a_epoch);
    Alcotest.(check string) "checking process labeled" "reader proc"
      r.Race.r_check.Race.a_label;
    Alcotest.(check string) "writing process labeled" "writer proc"
      r.Race.r_write.Race.a_label;
    let txt = Race.render_report r in
    List.iter
      (fun sub -> contains ("report text carries " ^ sub) txt sub)
      [ "fixture"; "slot"; "reader proc"; "writer proc" ]
  | rs -> Alcotest.failf "expected one report, got %d" (List.length rs)

let test_benign_same_value () =
  let s = mk_sched () in
  let ctx = mk_ctx s in
  let mon = Race.monitor ctx "fixture" in
  (* discfs-lint: allow races "the deliberate duplicate-fill under test" *)
  Sched.spawn s (fun () ->
      Race.check mon ~key:"blk";
      Sched.sleep s 1.0;
      Race.act mon ~value:"same-bytes" ~key:"blk" ());
  (* discfs-lint: allow races "the deliberate duplicate-fill under test" *)
  Sched.spawn s (fun () ->
      Sched.sleep s 0.5;
      Race.write mon ~value:"same-bytes" ~key:"blk" ());
  Sched.run s;
  Alcotest.(check int) "no report" 0 (Race.total_reports ctx);
  Alcotest.(check int) "conflict classified benign" 1 (Race.benign ctx)

let test_wipe_clears_windows () =
  let s = mk_sched () in
  let ctx = mk_ctx s in
  let mon = Race.monitor ctx "fixture" in
  (* discfs-lint: allow races "the wipe-semantics window under test" *)
  Sched.spawn s (fun () ->
      Race.check mon ~key:"k";
      Sched.sleep s 1.0;
      Race.act mon ~key:"k" ());
  (* discfs-lint: allow races "the wipe-semantics window under test" *)
  Sched.spawn s (fun () ->
      Sched.sleep s 0.5;
      Race.wipe mon;
      Race.write mon ~key:"k" ());
  Sched.run s;
  Alcotest.(check int) "window cannot span a wipe" 0 (Race.total_reports ctx)

let test_annotate_fallback () =
  let s = mk_sched () in
  let ctx = mk_ctx ~annotate:(fun () -> Some "span: nfs.read") s in
  let mon = Race.monitor ctx "fixture" in
  (* discfs-lint: allow races "the deliberate race under test, unlabeled so the annotate fallback fires" *)
  Sched.spawn s (fun () ->
      Race.check mon ~key:"k";
      Sched.sleep s 1.0;
      Race.act mon ~key:"k" ());
  (* discfs-lint: allow races "the deliberate race under test, unlabeled so the annotate fallback fires" *)
  Sched.spawn s (fun () ->
      Sched.sleep s 0.5;
      Race.write mon ~key:"k" ());
  Sched.run s;
  match Race.reports ctx with
  | [ r ] ->
    Alcotest.(check string) "trace-span context on the check" "span: nfs.read"
      r.Race.r_check.Race.a_label
  | rs -> Alcotest.failf "expected one report, got %d" (List.length rs)

let test_null_monitor () =
  Alcotest.(check bool) "null monitor disabled" false (Race.enabled Race.null);
  (* every operation must be an inert no-op *)
  Race.note Race.null "x";
  Race.read Race.null ~key:"k";
  Race.check Race.null ~key:"k";
  Race.write Race.null ~key:"k" ();
  Race.act Race.null ~key:"k" ();
  Race.wipe Race.null;
  Alcotest.(check (option (pair int int))) "no origin" None (Race.origin Race.null)

(* --- golden atomicity proofs over a live deployment ------------------- *)

(* The pooled concurrent workload from the concurrency suite, with the
   checker armed and the bcache + readahead on: DRC admission/
   coalescing and generation-guarded bcache fills must produce zero
   reports while the access counter proves the monitors saw traffic. *)
let test_deploy_atomicity_proof () =
  let d =
    Deploy.make ~workers:3 ~queue_depth:16 ~cache_blocks:64 ~readahead:4
      ~racecheck:true ()
  in
  let sched = Option.get d.Deploy.sched in
  let ctx = Option.get (Deploy.race_ctx d) in
  let clients =
    List.init 3 (fun i ->
        let c = Deploy.attach d ~identity:d.Deploy.admin ~uid:i () in
        let name = Printf.sprintf "f%d.txt" i in
        let fh, _, _ = Client.create c ~dir:(Client.root c) name () in
        (i, c, fh))
  in
  List.iter
    (fun (i, c, fh) ->
      (* discfs-lint: allow races "each process owns its client and file handle end to end" *)
      Sched.spawn sched (fun () ->
          let body = Printf.sprintf "client-%d-body" i in
          Nfs.Client.write_all (Client.nfs c) fh body;
          ignore
            (Nfs.Client.read (Client.nfs c) fh ~off:0
               ~count:(String.length body))))
    clients;
  Sched.run sched;
  Alcotest.(check bool) "instrumentation live" true (Race.accesses ctx > 0);
  Alcotest.(check (list string)) "zero reports: the windows are atomic" []
    (List.map Race.render_report (Race.reports ctx))

(* The bcache half of the known-delicate pair, pinned directly: a
   readahead fill whose decision predates a crash-driven drop must
   not warm the next incarnation's cache. *)
let test_bcache_generation_guard () =
  let b = Ffs.Bcache.create ~capacity:4 in
  let g = Ffs.Bcache.generation b in
  Ffs.Bcache.insert_if b ~generation:g 0 (Bytes.make 4 'a');
  Alcotest.(check bool) "fresh fill lands" true (Ffs.Bcache.mem b 0);
  Ffs.Bcache.drop b;
  (* the in-flight readahead completes against the old generation *)
  Ffs.Bcache.insert_if b ~generation:g 1 (Bytes.make 4 'b');
  Alcotest.(check bool) "stale fill refused" false (Ffs.Bcache.mem b 1);
  Alcotest.(check int) "stale fill counted" 1 (Ffs.Bcache.stale_fills b);
  Ffs.Bcache.insert_if b ~generation:(Ffs.Bcache.generation b) 1
    (Bytes.make 4 'b');
  Alcotest.(check bool) "current-generation fill lands" true
    (Ffs.Bcache.mem b 1)

let small_churn ?(crash_at = None) () =
  {
    Load.Scenario.cs_seed = "race-churn";
    cs_rate = 2.0;
    cs_duration = 120.0;
    cs_initial_clients = 3;
    cs_join_every = 30.0;
    cs_leave_every = 45.0;
    cs_crash_at = crash_at;
    cs_sa_lifetime = Some 64;
    cs_workers = 2;
    cs_queue_depth = 16;
    cs_retry =
      Some
        {
          Oncrpc.Rpc.base_timeout = 0.5;
          backoff = 2.0;
          max_attempts = 4;
          jitter = 0.1;
        };
  }

(* Churn with retransmitting retries and a mid-run crash: the DRC's
   in-flight coalescing absorbs the retransmits and the restart wipes
   the monitors — still zero reports. *)
let test_churn_atomicity_proof () =
  let r =
    Load.Scenario.churn
      ~spec:(small_churn ~crash_at:(Some 60.0) ())
      ~racecheck:true ()
  in
  Alcotest.(check int) "crash happened" 1 r.Load.Scenario.ch_crashes;
  Alcotest.(check int) "zero race reports under churn" 0 r.Load.Scenario.ch_races

(* --- schedule exploration --------------------------------------------- *)

let storm ?tie_seed () =
  Load.Scenario.boot_storm ~seed:"race-walk" ~clients:8 ~dirs:2 ~files_per_dir:2
    ~workers:3 ~queue_depth:16 ?tie_seed ()

let test_tie_default_fifo () =
  (* With no tie seed, same-timestamp events run in spawn order — the
     pre-exploration behavior, pinned exactly. *)
  let order = ref [] in
  let s = mk_sched () in
  Alcotest.(check bool) "tie seed off by default" true (Sched.tie_seed s = None);
  for i = 0 to 9 do
    (* discfs-lint: allow races "each process appends in its own slice; the order is read after Sched.run returns" *)
    ignore (Sched.spawn_at s 1.0 (fun () -> order := i :: !order))
  done;
  Sched.run s;
  Alcotest.(check (list int)) "FIFO among ties" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.rev !order)

let test_tie_seed_deterministic_and_perturbing () =
  let run seed =
    let order = ref [] in
    let s = mk_sched () in
    Sched.set_tie_seed s seed;
    for i = 0 to 9 do
      (* discfs-lint: allow races "each process appends in its own slice; the order is read after Sched.run returns" *)
      ignore (Sched.spawn_at s 1.0 (fun () -> order := i :: !order))
    done;
    Sched.run s;
    List.rev !order
  in
  let a = run (Some 0xfeedL) in
  Alcotest.(check (list int)) "same seed, same schedule" a (run (Some 0xfeedL));
  Alcotest.(check bool) "every tie still runs" true
    (List.sort compare a = [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]);
  (* 10! orders; nine fixed seeds all colliding with FIFO would mean
     the perturbation does nothing. *)
  let perturbed =
    List.exists
      (fun seed -> run (Some seed) <> run None)
      (List.init 9 (fun i -> Int64.of_int (0x5eed + i)))
  in
  Alcotest.(check bool) "some seed actually reorders ties" true perturbed

(* End-state equivalence across perturbed schedules. Each property
   compares a tie-seeded run's logical end state against the default
   schedule's; QCheck minimizes any divergence to a seed. *)
let nseeds = 8

let prop_walk_equivalence =
  let baseline = lazy (storm ()) in
  QCheck.Test.make ~name:"race: walk end state across 8 perturbed schedules"
    ~count:nseeds
    (QCheck.make QCheck.Gen.(map Int64.of_int small_int))
    (fun seed ->
      let b = Lazy.force baseline in
      let p = storm ~tie_seed:seed () in
      p.Load.Scenario.st_fingerprint = b.Load.Scenario.st_fingerprint
      && p.Load.Scenario.st_ops = b.Load.Scenario.st_ops
      && p.Load.Scenario.st_failed = b.Load.Scenario.st_failed)

let prop_churn_equivalence =
  (* Crashless: with no timeouts every offered op completes in every
     schedule, so even the content digests must agree. *)
  let spec = { (small_churn ()) with Load.Scenario.cs_seed = "race-churn-eq" } in
  let baseline = lazy (Load.Scenario.churn ~spec ()) in
  QCheck.Test.make ~name:"race: churn end state across 8 perturbed schedules"
    ~count:nseeds
    (QCheck.make QCheck.Gen.(map Int64.of_int small_int))
    (fun seed ->
      let b = Lazy.force baseline in
      let p = Load.Scenario.churn ~spec ~tie_seed:seed () in
      p.Load.Scenario.ch_fingerprint = b.Load.Scenario.ch_fingerprint
      && p.Load.Scenario.ch_offered = b.Load.Scenario.ch_offered
      && p.Load.Scenario.ch_offered
         = p.Load.Scenario.ch_completed + p.Load.Scenario.ch_failed)

let suite =
  [
    ("synthetic check-then-act caught", `Quick, test_synthetic_check_then_act);
    ("duplicate fill is benign", `Quick, test_benign_same_value);
    ("wipe clears windows", `Quick, test_wipe_clears_windows);
    ("trace-span fallback labels reports", `Quick, test_annotate_fallback);
    ("null monitor is inert", `Quick, test_null_monitor);
    ("bcache generation guard", `Quick, test_bcache_generation_guard);
    ("deploy atomicity proof (DRC + bcache)", `Quick, test_deploy_atomicity_proof);
    ("churn atomicity proof (crash + retries)", `Slow, test_churn_atomicity_proof);
    ("tie order defaults to FIFO", `Quick, test_tie_default_fifo);
    ("tie seed: deterministic, perturbing", `Quick, test_tie_seed_deterministic_and_perturbing);
    QCheck_alcotest.to_alcotest prop_walk_equivalence;
    QCheck_alcotest.to_alcotest prop_churn_equivalence;
  ]
