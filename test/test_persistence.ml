(* Persistence: filesystem images and DisCFS server state survive a
   "server restart" (fresh processes, same disk image + credential
   store). *)

module Proto = Nfs.Proto
module Deploy = Discfs.Deploy
module Client = Discfs.Client
module Server = Discfs.Server

let make_dev ?(nblocks = 4096) () =
  let clock = Simnet.Clock.create () in
  let stats = Simnet.Stats.create () in
  Ffs.Blockdev.create ~clock ~cost:Simnet.Cost.default ~stats ~nblocks ~block_size:8192 ()

let test_fs_image_roundtrip () =
  let dev = make_dev () in
  let fs = Ffs.Fs.create ~dev ~ninodes:128 in
  let root = Ffs.Fs.root fs in
  let docs = Ffs.Fs.mkdir fs root "docs" ~perms:0o755 ~uid:3 in
  let f = Ffs.Fs.create_file fs docs "paper.tex" ~perms:0o640 ~uid:7 in
  (* Write enough to reach the indirect blocks (pointer-cache flush
     correctness is the interesting part of save). *)
  let chunk = String.init 8192 (fun i -> Char.chr (i mod 251)) in
  for i = 0 to 19 do
    Ffs.Fs.write fs f ~off:(i * 8192) chunk
  done;
  let lnk = Ffs.Fs.symlink fs root "link" ~target:"/docs/paper.tex" ~uid:0 in
  Ffs.Fs.link fs root "hard" ~target:f;
  let gen = Ffs.Fs.generation fs f in
  let image = Ffs.Fs.save fs in
  (* Restore onto a fresh device ("new machine, same disk"). *)
  let dev2 = make_dev () in
  let fs2 = Ffs.Fs.load ~dev:dev2 image in
  Alcotest.(check int) "resolve" f (Ffs.Fs.resolve fs2 "/docs/paper.tex");
  for i = 0 to 19 do
    Alcotest.(check string)
      (Printf.sprintf "block %d content" i)
      chunk
      (Ffs.Fs.read fs2 f ~off:(i * 8192) ~len:8192)
  done;
  let attr = Ffs.Fs.getattr fs2 f in
  Alcotest.(check int) "perms" 0o640 attr.Ffs.Inode.a_perms;
  Alcotest.(check int) "uid" 7 attr.Ffs.Inode.a_uid;
  Alcotest.(check int) "nlink" 2 attr.Ffs.Inode.a_nlink;
  Alcotest.(check int) "generation survives" gen (Ffs.Fs.generation fs2 f);
  Alcotest.(check string) "symlink" "/docs/paper.tex" (Ffs.Fs.readlink fs2 lnk);
  Alcotest.(check (option string)) "path tracking survives" (Some "/docs/paper.tex")
    (Ffs.Fs.path_of fs2 f);
  (* The restored volume keeps working: more writes, new files. *)
  let g = Ffs.Fs.create_file fs2 docs "new.txt" ~perms:0o644 ~uid:0 in
  Ffs.Fs.write fs2 g ~off:0 "post-restore";
  Alcotest.(check string) "writable after restore" "post-restore"
    (Ffs.Fs.read fs2 g ~off:0 ~len:100);
  (* Free-space accounting carried over consistently. *)
  let s1 = Ffs.Fs.statfs fs and s2 = Ffs.Fs.statfs fs2 in
  Alcotest.(check bool) "free blocks consistent" true
    (s2.Ffs.Fs.f_free_blocks <= s1.Ffs.Fs.f_free_blocks)

let test_fs_image_errors () =
  let dev = make_dev () in
  let fs = Ffs.Fs.create ~dev ~ninodes:64 in
  let image = Ffs.Fs.save fs in
  (match Ffs.Fs.load ~dev:(make_dev ()) "garbage" with
  | exception Ffs.Fs.Bad_image _ -> ()
  | _ -> Alcotest.fail "garbage accepted");
  (let truncated = String.sub image 0 (String.length image / 2) in
   match Ffs.Fs.load ~dev:(make_dev ()) truncated with
   | exception Ffs.Fs.Bad_image _ -> ()
   | _ -> Alcotest.fail "truncated image accepted");
  (match Ffs.Fs.load ~dev:(make_dev ~nblocks:64 ()) image with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "geometry mismatch accepted")

let test_server_restart () =
  (* Day 1: a server accumulates files and credentials. *)
  let d = Deploy.make ~seed:"restart" () in
  let admin_client = Deploy.attach d ~identity:d.Deploy.admin ~uid:0 () in
  let root = Client.root admin_client in
  let fh, _, _ = Client.create admin_client ~dir:root "durable.txt" () in
  Nfs.Client.write_all (Client.nfs admin_client) fh "survives restarts";
  let bob_key = Deploy.new_identity d in
  let bob = Deploy.attach d ~identity:bob_key ~uid:100 () in
  let cred =
    Deploy.admin_issue d
      ~licensees:(Printf.sprintf "\"%s\"" (Client.principal bob))
      ~conditions:
        (Printf.sprintf "(app_domain == \"DisCFS\") && (HANDLE == \"%d\") -> \"R\";"
           fh.Proto.ino)
      ()
  in
  (match Client.submit_credential bob cred with Ok _ -> () | Error e -> Alcotest.fail e);
  let mallory_key = Deploy.new_identity d in
  (match
     Client.revoke_key admin_client
       ~principal:(Keynote.Assertion.principal_of_pub mallory_key.Dcrypto.Dsa.pub)
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let disk_image = Ffs.Fs.save d.Deploy.fs in
  let server_state = Server.save_state d.Deploy.server in

  (* Day 2: new process. Same keys (from disk in reality), same disk
     image, same credential store. *)
  let clock = Simnet.Clock.create () in
  let stats = Simnet.Stats.create () in
  let link = Simnet.Link.create ~clock ~cost:Simnet.Cost.default ~stats in
  let dev =
    Ffs.Blockdev.create ~clock ~cost:Simnet.Cost.default ~stats ~nblocks:16384 ~block_size:8192 ()
  in
  let fs = Ffs.Fs.load ~dev disk_image in
  let server =
    Server.create ~fs ~admin:d.Deploy.admin.Dcrypto.Dsa.pub
      ~server_key:(Server.server_key d.Deploy.server)
      ~drbg:(Dcrypto.Drbg.create ~seed:"restart-day2") ()
  in
  (match Server.load_state server server_state with
  | Ok n -> Alcotest.(check bool) "credentials restored" true (n >= 1)
  | Error e -> Alcotest.fail e);
  let rpc = Oncrpc.Rpc.server ~clock ~cost:Simnet.Cost.default ~stats in
  Server.attach_rpc server rpc;
  (* Bob reconnects (fresh IKE) and still has access — without
     resubmitting anything. *)
  let bob2 =
    Client.attach ~link ~rpc ~server ~identity:bob_key
      ~drbg:(Dcrypto.Drbg.create ~seed:"bob-day2") ~uid:100 ()
  in
  let fh2 = { Proto.ino = fh.Proto.ino; gen = Ffs.Fs.generation fs fh.Proto.ino } in
  let _, data = Nfs.Client.read (Client.nfs bob2) fh2 ~off:0 ~count:100 in
  Alcotest.(check string) "file and credential survived" "survives restarts" data;
  (* The revocation list survived too. *)
  let mallory =
    Client.attach ~link ~rpc ~server ~identity:mallory_key
      ~drbg:(Dcrypto.Drbg.create ~seed:"mallory-day2") ~uid:666 ()
  in
  let cred_mallory =
    Keynote.Assertion.issue ~key:mallory_key ~drbg:(Dcrypto.Drbg.create ~seed:"m")
      ~licensees:(Printf.sprintf "\"%s\"" (Client.principal mallory))
      ~conditions:"true;" ()
  in
  (match Client.submit_credential mallory cred_mallory with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "revoked key accepted after restart")

let test_server_state_corruption () =
  let d = Deploy.make ~seed:"corrupt" () in
  (match Server.load_state d.Deploy.server "not xdr" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "corrupt state accepted")

let prop_image_roundtrip =
  QCheck.Test.make ~name:"image roundtrip preserves random trees" ~count:15
    (QCheck.make QCheck.Gen.(list_size (int_range 1 20) (pair (int_bound 4) small_string)))
    (fun spec ->
      let dev = make_dev () in
      let fs = Ffs.Fs.create ~dev ~ninodes:128 in
      let root = Ffs.Fs.root fs in
      let dirs = ref [ root ] in
      List.iteri
        (fun i (kind, content) ->
          let parent = List.nth !dirs (i mod List.length !dirs) in
          let name = Printf.sprintf "n%d" i in
          if kind = 0 then dirs := Ffs.Fs.mkdir fs parent name ~perms:0o755 ~uid:0 :: !dirs
          else begin
            let f = Ffs.Fs.create_file fs parent name ~perms:0o644 ~uid:0 in
            Ffs.Fs.write fs f ~off:0 content
          end)
        spec;
      let image = Ffs.Fs.save fs in
      let fs2 = Ffs.Fs.load ~dev:(make_dev ()) image in
      (* Compare full recursive listings and file contents. *)
      let rec walk fs dino =
        List.concat_map
          (fun (name, ino) ->
            if name = "." || name = ".." then []
            else begin
              let attr = Ffs.Fs.getattr fs ino in
              match attr.Ffs.Inode.a_kind with
              | Ffs.Inode.Dir -> (name, "<dir>") :: walk fs ino
              | Ffs.Inode.Reg ->
                [ (name, Ffs.Fs.read fs ino ~off:0 ~len:attr.Ffs.Inode.a_size) ]
              | Ffs.Inode.Symlink -> [ (name, Ffs.Fs.readlink fs ino) ]
            end)
          (Ffs.Fs.readdir fs dino)
      in
      walk fs root = walk fs2 (Ffs.Fs.root fs2))

let suite =
  [
    Alcotest.test_case "fs image roundtrip" `Quick test_fs_image_roundtrip;
    Alcotest.test_case "fs image error handling" `Quick test_fs_image_errors;
    Alcotest.test_case "server restart keeps credentials" `Quick test_server_restart;
    Alcotest.test_case "corrupt server state rejected" `Quick test_server_state_corruption;
    QCheck_alcotest.to_alcotest prop_image_roundtrip;
  ]
