(* Entry point for the static-analysis suite; see test/dune for why
   this is not part of test_main. *)

let () = Alcotest.run "discfs-lint" [ ("lint", Test_lint.suite) ]
