(* The server-side caching stack: buffer cache + readahead (lib/ffs),
   KeyNote memo cache (lib/core), client attribute cache (lib/nfs).
   The invariants worth a regression test are the dangerous ones:
   revoked authority must never be served from the memo cache, a
   crash must never leave the buffer cache ahead of the platter, and
   caching must never change what a read returns. *)

module Proto = Nfs.Proto
module Assertion = Keynote.Assertion
module Deploy = Discfs.Deploy
module Client = Discfs.Client
module Server = Discfs.Server
module Bcache = Ffs.Bcache
module Blockdev = Ffs.Blockdev
module Clock = Simnet.Clock
module Stats = Simnet.Stats
module Fault = Simnet.Fault

let expect_nfs_error status f =
  match f () with
  | exception Proto.Nfs_error s when s = status -> ()
  | exception Proto.Nfs_error s ->
    Alcotest.failf "expected %s, got %s" (Proto.status_to_string status) (Proto.status_to_string s)
  | _ -> Alcotest.failf "expected %s" (Proto.status_to_string status)

let quoted c = Printf.sprintf "\"%s\"" (Client.principal c)

let handle_conditions fh value =
  Printf.sprintf "(app_domain == \"DisCFS\") && (HANDLE == \"%d\") -> \"%s\";" fh.Proto.ino value

let make_dev ?(cache_blocks = 0) ?(readahead = 8) ?(nblocks = 64) ?(block_size = 512) () =
  let clock = Clock.create () in
  let stats = Stats.create () in
  let dev =
    Blockdev.create ~cache_blocks ~readahead ~clock ~cost:Simnet.Cost.default ~stats ~nblocks
      ~block_size ()
  in
  (dev, clock, stats)

let block dev c = Bytes.make (Blockdev.block_size dev) c

(* --- Bcache unit behaviour ------------------------------------------- *)

let test_bcache_lru () =
  let c = Bcache.create ~capacity:3 in
  Bcache.insert c 1 (Bytes.of_string "a");
  Bcache.insert c 2 (Bytes.of_string "b");
  Bcache.insert c 3 (Bytes.of_string "c");
  (* Touch 1 so 2 becomes the LRU victim. *)
  (match Bcache.find c 1 with
  | Some b -> Alcotest.(check string) "hit returns data" "a" (Bytes.to_string b)
  | None -> Alcotest.fail "expected hit");
  Bcache.insert c 4 (Bytes.of_string "d");
  Alcotest.(check bool) "LRU evicted" false (Bcache.mem c 2);
  Alcotest.(check bool) "recently used kept" true (Bcache.mem c 1);
  Alcotest.(check int) "one eviction" 1 (Bcache.evictions c);
  Alcotest.(check int) "bounded" 3 (Bcache.size c);
  (* The cache hands out copies: mutating a result must not poison it. *)
  (match Bcache.find c 3 with
  | Some b -> Bytes.set b 0 'X'
  | None -> Alcotest.fail "expected hit");
  (match Bcache.find c 3 with
  | Some b -> Alcotest.(check string) "defensive copy" "c" (Bytes.to_string b)
  | None -> Alcotest.fail "expected hit");
  Bcache.drop c;
  Alcotest.(check int) "drop empties" 0 (Bcache.size c);
  Alcotest.(check int) "drop keeps counters" 1 (Bcache.evictions c);
  (* Capacity 0 disables caching entirely. *)
  let z = Bcache.create ~capacity:0 in
  Bcache.insert z 1 (Bytes.of_string "x");
  Alcotest.(check (option string)) "disabled cache stores nothing" None
    (Option.map Bytes.to_string (Bcache.find z 1))

(* --- buffer cache on the block device -------------------------------- *)

let test_buffer_cache_hit_is_free () =
  let dev, clock, stats = make_dev ~cache_blocks:16 ~readahead:1 () in
  Blockdev.write dev 7 (block dev 'x');
  let t0 = Clock.now clock in
  (* The write went through the cache too: this read is a hit. *)
  ignore (Blockdev.read dev 7);
  Alcotest.(check (float 0.0)) "cache hit charges no time" t0 (Clock.now clock);
  Alcotest.(check int) "no physical read" 0 (Blockdev.reads dev);
  Alcotest.(check int) "hit counted" 1 (Stats.get stats "bcache.hits");
  (* A cold block pays the full physical cost. *)
  ignore (Blockdev.read dev 30);
  Alcotest.(check bool) "miss charges time" true (Clock.now clock > t0);
  Alcotest.(check int) "physical read" 1 (Blockdev.reads dev);
  Alcotest.(check int) "miss counted" 1 (Stats.get stats "bcache.misses");
  (* ...and the second access is free. *)
  let t1 = Clock.now clock in
  ignore (Blockdev.read dev 30);
  Alcotest.(check (float 0.0)) "filled on miss" t1 (Clock.now clock)

let test_readahead_prefetch () =
  let dev, _clock, stats = make_dev ~cache_blocks:32 ~readahead:8 () in
  for i = 0 to 15 do
    Blockdev.write dev i (block dev (Char.chr (Char.code 'a' + i)))
  done;
  Blockdev.drop_cache dev;
  let phys0 = Blockdev.reads dev in
  (* A sequential pair triggers the prefetcher: blocks 2..8 ride the
     request for 1. *)
  ignore (Blockdev.read dev 0);
  ignore (Blockdev.read dev 1);
  Alcotest.(check int) "prefetch window filled" 7 (Stats.get stats "bcache.readahead_blocks");
  let phys1 = Blockdev.reads dev in
  for i = 2 to 8 do
    let b = Blockdev.read dev i in
    Alcotest.(check char) "prefetched content" (Char.chr (Char.code 'a' + i)) (Bytes.get b 0)
  done;
  Alcotest.(check int) "prefetched blocks hit, no demand I/O" phys1 (Blockdev.reads dev);
  Alcotest.(check int) "two demand reads total" 2 (phys1 - phys0)

let test_failed_write_not_cached () =
  (* A write the controller failed must leave both the platter and the
     cache on the old value — the cache may never run ahead of the
     disk. *)
  let dev, _clock, _stats = make_dev ~cache_blocks:16 ~readahead:1 () in
  let fault = Fault.create () in
  Blockdev.set_fault dev (Some fault);
  Blockdev.write dev 3 (block dev 'o') (* disk op 0 *);
  Fault.script_disk fault [ (1, Fault.Fail_write) ];
  (match Blockdev.write dev 3 (block dev 'n') (* disk op 1: fails *) with
  | exception Blockdev.Io_error _ -> ()
  | () -> Alcotest.fail "scripted write fault did not fire");
  let via_cache = Blockdev.read dev 3 in
  Alcotest.(check char) "cache holds committed value" 'o' (Bytes.get via_cache 0);
  Blockdev.drop_cache dev;
  let via_disk = Blockdev.read dev 3 in
  Alcotest.(check char) "platter agrees" 'o' (Bytes.get via_disk 0)

let test_crash_mid_write_no_stale_blocks () =
  (* End-to-end: a client writes through the full stack, the server
     crashes, and the rebooted incarnation must serve current data
     from a cold cache — never a stale or phantom cached block. *)
  let d = Deploy.make ~cache_blocks:64 ~seed:"test-cache-crash" () in
  let admin = Deploy.attach d ~identity:d.Deploy.admin ~uid:0 () in
  let fh, _, _ = Client.create admin ~dir:(Client.root admin) "journal.txt" () in
  Nfs.Client.write_all (Client.nfs admin) fh "version-1";
  (* Warm the buffer cache with the freshly written block. *)
  ignore (Nfs.Client.read (Client.nfs admin) fh ~off:0 ~count:9);
  Alcotest.(check bool) "cache warm before crash" true
    (Bcache.size (Blockdev.bcache d.Deploy.dev) > 0);
  Deploy.crash_and_restart d;
  Alcotest.(check int) "buffer cache dropped by crash" 0
    (Bcache.size (Blockdev.bcache d.Deploy.dev));
  let admin2 = Deploy.attach d ~identity:d.Deploy.admin ~uid:0 () in
  let misses0 = Blockdev.cache_misses d.Deploy.dev in
  let _, data = Nfs.Client.read (Client.nfs admin2) fh ~off:0 ~count:9 in
  Alcotest.(check string) "write-through data survives the crash" "version-1" data;
  Alcotest.(check bool) "first post-crash read misses (cold cache)" true
    (Blockdev.cache_misses d.Deploy.dev > misses0)

(* --- policy memo cache ----------------------------------------------- *)

let test_revoked_credential_misses_memo_cache () =
  let d = Deploy.make ~seed:"test-cache-revoke" () in
  let admin = Deploy.attach d ~identity:d.Deploy.admin ~uid:0 () in
  let fh, _, _ = Client.create admin ~dir:(Client.root admin) "secret.txt" () in
  Nfs.Client.write_all (Client.nfs admin) fh "classified";
  let bob = Deploy.attach d ~identity:(Deploy.new_identity d) ~uid:100 () in
  let cred = Deploy.admin_issue d ~licensees:(quoted bob) ~conditions:(handle_conditions fh "R") () in
  (match Client.submit_credential bob cred with Ok _ -> () | Error e -> Alcotest.fail e);
  let cache = Server.cache d.Deploy.server in
  (* Warm the memo cache with Bob's grant. *)
  ignore (Nfs.Client.read (Client.nfs bob) fh ~off:0 ~count:4);
  ignore (Nfs.Client.read (Client.nfs bob) fh ~off:0 ~count:4);
  Alcotest.(check bool) "memoised while credential stands" true
    (Discfs.Policy_cache.hits cache > 0);
  (* Revocation flushes the memo cache and rotates the epoch. *)
  (match Client.revoke_credential admin ~fingerprint:(Assertion.fingerprint cred) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "flush on revocation" 0 (Discfs.Policy_cache.size cache);
  let hits0 = Discfs.Policy_cache.hits cache in
  expect_nfs_error Proto.nfserr_acces (fun () ->
      ignore (Nfs.Client.read (Client.nfs bob) fh ~off:0 ~count:4));
  Alcotest.(check int) "revoked request served no memoised grant" hits0
    (Discfs.Policy_cache.hits cache);
  Alcotest.(check bool) "it re-ran the compliance checker" true
    (Discfs.Policy_cache.misses cache > 0)

let test_epoch_and_attributes_key_the_memo () =
  (* The memo key must separate everything the compliance checker
     sees: principal, attributes, credential-set epoch. *)
  let attrs = [ ("HANDLE", "7"); ("PATH", "/a") ] in
  let k = Discfs.Policy_cache.key ~peer:"p1" ~attributes:attrs ~epoch:"e1" in
  Alcotest.(check string) "deterministic" k
    (Discfs.Policy_cache.key ~peer:"p1" ~attributes:attrs ~epoch:"e1");
  Alcotest.(check string) "attribute order canonicalised" k
    (Discfs.Policy_cache.key ~peer:"p1" ~attributes:(List.rev attrs) ~epoch:"e1");
  let different name k' = Alcotest.(check bool) name true (k <> k') in
  different "peer separates"
    (Discfs.Policy_cache.key ~peer:"p2" ~attributes:attrs ~epoch:"e1");
  different "attributes separate"
    (Discfs.Policy_cache.key ~peer:"p1" ~attributes:[ ("HANDLE", "8"); ("PATH", "/a") ] ~epoch:"e1");
  different "epoch separates"
    (Discfs.Policy_cache.key ~peer:"p1" ~attributes:attrs ~epoch:"e2")

(* --- client attribute cache ------------------------------------------ *)

let test_attr_cache_expiry_counter () =
  let d = Cfs.Cfs_ne.deploy () in
  let client, root = Cfs.Cfs_ne.connect d () in
  let clock = d.Cfs.Cfs_ne.clock in
  let cache = Nfs.Cache.create ~client ~clock () in
  let fh, _ = Nfs.Client.create_file client root "ttl.txt" Proto.sattr_none in
  ignore (Nfs.Cache.getattr cache fh) (* cold miss *);
  ignore (Nfs.Cache.getattr cache fh) (* hit *);
  Alcotest.(check int) "cold miss is not an expiry" 0 (Nfs.Cache.expiries cache);
  Clock.advance clock 4.0 (* past the 3 s attribute TTL *);
  ignore (Nfs.Cache.getattr cache fh);
  Alcotest.(check int) "TTL lapse counted as expiry" 1 (Nfs.Cache.expiries cache);
  Alcotest.(check int) "and as a miss" 2 (Nfs.Cache.misses cache);
  Alcotest.(check int) "one hit in between" 1 (Nfs.Cache.hits cache)

(* Regression: the attribute and name caches used to share one
   ["cache.hits"]/["cache.misses"] counter pair, so a name-cache
   pathology (e.g. churn from renames) was indistinguishable from
   attribute-TTL behaviour in any metrics dump. The counters are now
   split per cache; the aggregates remain for the old consumers. *)
let test_cache_metrics_split_by_kind () =
  let d = Cfs.Cfs_ne.deploy () in
  let client, root = Cfs.Cfs_ne.connect d () in
  let clock = d.Cfs.Cfs_ne.clock in
  let metrics = Trace.Metrics.create () in
  let trace = Trace.create ~metrics ~now:(fun () -> Clock.now clock) () in
  let cache = Nfs.Cache.create ~client ~clock () in
  Nfs.Cache.set_trace cache trace;
  let _ = Nfs.Client.create_file client root "split.txt" Proto.sattr_none in
  (* one attr miss + one attr hit, one name miss + one name hit *)
  let fh, _ = Nfs.Cache.lookup cache root "split.txt" in
  let _ = Nfs.Cache.lookup cache root "split.txt" in
  (* the lookup miss refilled fh's attr entry, so age it out first *)
  Clock.advance clock 4.0;
  let _ = Nfs.Cache.getattr cache fh in
  let _ = Nfs.Cache.getattr cache fh in
  let c name = Trace.Metrics.counter metrics name in
  Alcotest.(check int) "attr hits" 1 (c "cache.attr.hits");
  Alcotest.(check int) "attr misses" 1 (c "cache.attr.misses");
  Alcotest.(check int) "name hits" 1 (c "cache.name.hits");
  Alcotest.(check int) "name misses" 1 (c "cache.name.misses");
  Alcotest.(check int) "attr expiry counted per-kind" 1 (c "cache.attr.expiries");
  Alcotest.(check int) "no name expiries" 0 (c "cache.name.expiries");
  Alcotest.(check int) "aggregate hits still cover both" 2 (Nfs.Cache.hits cache);
  Alcotest.(check int) "aggregate misses still cover both" 2 (Nfs.Cache.misses cache)

(* --- property: caching never changes results ------------------------- *)

(* Random mixes of writes and reads against one file, applied to two
   identical filesystems — one over a generously cached + readahead
   device, one over a bare device. Every read must return identical
   bytes: the cache layer may only change *when* the platter is
   touched, never *what* the file contains. *)
type fop = Write of int * string | Read of int * int

let gen_ops =
  QCheck.Gen.(
    list_size (int_range 1 40)
      (int_range 0 20_000 >>= fun off ->
       oneof
         [
           (int_range 1 2_000 >>= fun len ->
            map (fun c -> Write (off, String.make len c)) printable);
           map (fun len -> Read (off, len)) (int_range 1 4_000);
         ]))

let show_ops ops =
  String.concat "; "
    (List.map
       (function
         | Write (off, s) -> Printf.sprintf "W@%d[%d]" off (String.length s)
         | Read (off, len) -> Printf.sprintf "R@%d[%d]" off len)
       ops)

let prop_cached_fs_reads_equal_uncached =
  QCheck.Test.make ~name:"cached Fs reads == uncached (random access patterns)" ~count:60
    (QCheck.make ~print:show_ops gen_ops) (fun ops ->
      let instance ~cache_blocks ~readahead =
        let dev, _, _ = make_dev ~cache_blocks ~readahead ~nblocks:256 ~block_size:512 () in
        let fs = Ffs.Fs.create ~dev ~ninodes:16 in
        let f = Ffs.Fs.create_file fs (Ffs.Fs.root fs) "f" ~perms:0o644 ~uid:0 in
        (fs, f)
      in
      let fs_c, f_c = instance ~cache_blocks:64 ~readahead:8 in
      let fs_u, f_u = instance ~cache_blocks:0 ~readahead:1 in
      List.for_all
        (function
          | Write (off, data) ->
            Ffs.Fs.write fs_c f_c ~off data;
            Ffs.Fs.write fs_u f_u ~off data;
            true
          | Read (off, len) ->
            String.equal (Ffs.Fs.read fs_c f_c ~off ~len) (Ffs.Fs.read fs_u f_u ~off ~len))
        ops)

let suite =
  [
    Alcotest.test_case "bcache LRU mechanics" `Quick test_bcache_lru;
    Alcotest.test_case "buffer-cache hit is free" `Quick test_buffer_cache_hit_is_free;
    Alcotest.test_case "sequential readahead" `Quick test_readahead_prefetch;
    Alcotest.test_case "failed write never cached" `Quick test_failed_write_not_cached;
    Alcotest.test_case "crash drops cache, no stale blocks" `Quick
      test_crash_mid_write_no_stale_blocks;
    Alcotest.test_case "revoked credential misses memo cache" `Quick
      test_revoked_credential_misses_memo_cache;
    Alcotest.test_case "memo key separates peer/attrs/epoch" `Quick
      test_epoch_and_attributes_key_the_memo;
    Alcotest.test_case "attr cache counts expiries" `Quick test_attr_cache_expiry_counter;
    Alcotest.test_case "cache metrics split by kind" `Quick test_cache_metrics_split_by_kind;
    QCheck_alcotest.to_alcotest prop_cached_fs_reads_equal_uncached;
  ]
