(* The FFS-like filesystem substrate: block device timing, inode
   management, file I/O through indirect blocks, directories, links,
   renames and handle generations. *)

module Clock = Simnet.Clock
module Stats = Simnet.Stats

let make_fs ?(nblocks = 4096) ?(ninodes = 256) () =
  let clock = Clock.create () in
  let stats = Stats.create () in
  let dev =
    Ffs.Blockdev.create ~clock ~cost:Simnet.Cost.default ~stats ~nblocks ~block_size:8192 ()
  in
  Ffs.Fs.create ~dev ~ninodes

let expect_error expected f =
  match f () with
  | exception Ffs.Fs.Error (e, _) when e = expected -> ()
  | exception Ffs.Fs.Error (e, msg) ->
    Alcotest.failf "expected %s, got %s (%s)" (Ffs.Fs.error_to_string expected)
      (Ffs.Fs.error_to_string e) msg
  | _ -> Alcotest.failf "expected error %s" (Ffs.Fs.error_to_string expected)

let test_blockdev () =
  let clock = Clock.create () in
  let stats = Stats.create () in
  let dev =
    Ffs.Blockdev.create ~clock ~cost:Simnet.Cost.default ~stats ~nblocks:64 ~block_size:512 ()
  in
  let b = Bytes.make 512 'x' in
  Ffs.Blockdev.write dev 3 b;
  Alcotest.(check bytes) "read back" b (Ffs.Blockdev.read dev 3);
  Alcotest.(check bytes) "unwritten zeroed" (Bytes.make 512 '\000') (Ffs.Blockdev.read dev 10);
  Alcotest.(check int) "reads" 2 (Ffs.Blockdev.reads dev);
  Alcotest.(check int) "writes" 1 (Ffs.Blockdev.writes dev);
  Alcotest.(check bool) "time advanced" true (Clock.now clock > 0.0);
  Alcotest.check_raises "oob" (Invalid_argument "Blockdev: block out of range") (fun () ->
      ignore (Ffs.Blockdev.read dev 64));
  Alcotest.check_raises "bad size" (Invalid_argument "Blockdev.write: bad block length")
    (fun () -> Ffs.Blockdev.write dev 0 (Bytes.create 5))

let test_seek_model () =
  let clock = Clock.create () in
  let stats = Stats.create () in
  let dev =
    Ffs.Blockdev.create ~clock ~cost:Simnet.Cost.default ~stats ~nblocks:1024 ~block_size:8192 ()
  in
  (* Sequential run: one seek at most, then streaming. *)
  for i = 10 to 20 do ignore (Ffs.Blockdev.read dev i) done;
  let sequential_seeks = Ffs.Blockdev.seeks dev in
  (* Random access: a seek per I/O. *)
  List.iter (fun i -> ignore (Ffs.Blockdev.read dev i)) [ 500; 30; 700; 100 ];
  Alcotest.(check bool) "sequential cheap" true (sequential_seeks <= 1);
  Alcotest.(check int) "random seeks" (sequential_seeks + 4) (Ffs.Blockdev.seeks dev)

let test_create_write_read () =
  let fs = make_fs () in
  let root = Ffs.Fs.root fs in
  let f = Ffs.Fs.create_file fs root "hello.txt" ~perms:0o644 ~uid:100 in
  Ffs.Fs.write fs f ~off:0 "hello, world";
  Alcotest.(check string) "read back" "hello, world" (Ffs.Fs.read fs f ~off:0 ~len:100);
  Alcotest.(check string) "offset read" "world" (Ffs.Fs.read fs f ~off:7 ~len:5);
  Alcotest.(check string) "past eof" "" (Ffs.Fs.read fs f ~off:50 ~len:10);
  let attr = Ffs.Fs.getattr fs f in
  Alcotest.(check int) "size" 12 attr.Ffs.Inode.a_size;
  Alcotest.(check int) "perms" 0o644 attr.Ffs.Inode.a_perms;
  Alcotest.(check int) "uid" 100 attr.Ffs.Inode.a_uid;
  Alcotest.(check bool) "is file" true (attr.Ffs.Inode.a_kind = Ffs.Inode.Reg)

let test_overwrite_and_extend () =
  let fs = make_fs () in
  let f = Ffs.Fs.create_file fs (Ffs.Fs.root fs) "f" ~perms:0o600 ~uid:0 in
  Ffs.Fs.write fs f ~off:0 "aaaaaaaaaa";
  Ffs.Fs.write fs f ~off:5 "BBB";
  Alcotest.(check string) "overwrite" "aaaaaBBBaa" (Ffs.Fs.read fs f ~off:0 ~len:10);
  Ffs.Fs.write fs f ~off:20 "tail";
  Alcotest.(check int) "sparse extend" 24 (Ffs.Fs.getattr fs f).Ffs.Inode.a_size;
  Alcotest.(check string) "hole zeroed" (String.make 10 '\000')
    (Ffs.Fs.read fs f ~off:10 ~len:10)

let test_large_file_indirect () =
  (* Span direct, single-indirect and double-indirect: 12 + 2048
     blocks of 8K = ~16.8 MB boundary; write 17 MB. *)
  let fs = make_fs ~nblocks:4096 () in
  let f = Ffs.Fs.create_file fs (Ffs.Fs.root fs) "big" ~perms:0o600 ~uid:0 in
  let chunk = String.init 8192 (fun i -> Char.chr (i mod 251)) in
  let nchunks = (17 * 1024 * 1024) / 8192 in
  for i = 0 to nchunks - 1 do
    Ffs.Fs.write fs f ~off:(i * 8192) chunk
  done;
  Alcotest.(check int) "size" (nchunks * 8192) (Ffs.Fs.getattr fs f).Ffs.Inode.a_size;
  (* Spot-check content at each mapping regime. *)
  List.iter
    (fun fblock ->
      let got = Ffs.Fs.read fs f ~off:(fblock * 8192) ~len:8192 in
      Alcotest.(check string) (Printf.sprintf "block %d" fblock) chunk got)
    [ 0; 11; 12; 100; 2059; 2060; nchunks - 1 ];
  (* Truncate back to one block and confirm space is reclaimed. *)
  let free_before = (Ffs.Fs.statfs fs).Ffs.Fs.f_free_blocks in
  ignore (Ffs.Fs.setattr fs f ~size:8192 ());
  let free_after = (Ffs.Fs.statfs fs).Ffs.Fs.f_free_blocks in
  Alcotest.(check bool) "blocks freed" true (free_after > free_before + 2000);
  Alcotest.(check string) "first block survives" chunk (Ffs.Fs.read fs f ~off:0 ~len:8192)

let test_directories () =
  let fs = make_fs () in
  let root = Ffs.Fs.root fs in
  let docs = Ffs.Fs.mkdir fs root "docs" ~perms:0o755 ~uid:0 in
  let f = Ffs.Fs.create_file fs docs "paper.tex" ~perms:0o644 ~uid:0 in
  Alcotest.(check int) "lookup" f (Ffs.Fs.lookup fs docs "paper.tex");
  Alcotest.(check int) "resolve path" f (Ffs.Fs.resolve fs "/docs/paper.tex");
  Alcotest.(check int) "dot" docs (Ffs.Fs.lookup fs docs ".");
  Alcotest.(check int) "dotdot" root (Ffs.Fs.lookup fs docs "..");
  let names = List.map fst (Ffs.Fs.readdir fs docs) in
  Alcotest.(check (list string)) "entries" [ "."; ".."; "paper.tex" ] names;
  expect_error Ffs.Fs.ENOENT (fun () -> Ffs.Fs.lookup fs docs "missing");
  expect_error Ffs.Fs.ENOTDIR (fun () -> Ffs.Fs.lookup fs f "x");
  expect_error Ffs.Fs.EEXIST (fun () ->
      Ffs.Fs.create_file fs docs "paper.tex" ~perms:0o644 ~uid:0);
  expect_error Ffs.Fs.EISDIR (fun () -> Ffs.Fs.read fs docs ~off:0 ~len:1)

let test_remove_and_rmdir () =
  let fs = make_fs () in
  let root = Ffs.Fs.root fs in
  let d = Ffs.Fs.mkdir fs root "d" ~perms:0o755 ~uid:0 in
  let _f = Ffs.Fs.create_file fs d "f" ~perms:0o644 ~uid:0 in
  expect_error Ffs.Fs.ENOTEMPTY (fun () -> Ffs.Fs.rmdir fs root "d");
  expect_error Ffs.Fs.EISDIR (fun () -> Ffs.Fs.remove fs root "d");
  Ffs.Fs.remove fs d "f";
  Ffs.Fs.rmdir fs root "d";
  expect_error Ffs.Fs.ENOENT (fun () -> Ffs.Fs.lookup fs root "d");
  (* Inode slots are recycled. *)
  let free = (Ffs.Fs.statfs fs).Ffs.Fs.f_free_inodes in
  Alcotest.(check int) "inodes reclaimed" ((Ffs.Fs.statfs fs).Ffs.Fs.f_total_inodes - 1) free

let test_hard_links () =
  let fs = make_fs () in
  let root = Ffs.Fs.root fs in
  let f = Ffs.Fs.create_file fs root "a" ~perms:0o644 ~uid:0 in
  Ffs.Fs.write fs f ~off:0 "shared";
  Ffs.Fs.link fs root "b" ~target:f;
  Alcotest.(check int) "nlink 2" 2 (Ffs.Fs.getattr fs f).Ffs.Inode.a_nlink;
  Ffs.Fs.remove fs root "a";
  Alcotest.(check string) "alive via b" "shared" (Ffs.Fs.read fs (Ffs.Fs.lookup fs root "b") ~off:0 ~len:6);
  Ffs.Fs.remove fs root "b";
  expect_error Ffs.Fs.ESTALE (fun () -> Ffs.Fs.getattr fs f)

let test_symlinks () =
  let fs = make_fs () in
  let root = Ffs.Fs.root fs in
  let s = Ffs.Fs.symlink fs root "lnk" ~target:"/docs/paper.tex" ~uid:0 in
  Alcotest.(check string) "readlink" "/docs/paper.tex" (Ffs.Fs.readlink fs s);
  let attr = Ffs.Fs.getattr fs s in
  Alcotest.(check bool) "kind" true (attr.Ffs.Inode.a_kind = Ffs.Inode.Symlink);
  let f = Ffs.Fs.create_file fs root "plain" ~perms:0o644 ~uid:0 in
  expect_error Ffs.Fs.EINVAL (fun () -> ignore (Ffs.Fs.readlink fs f))

let test_rename () =
  let fs = make_fs () in
  let root = Ffs.Fs.root fs in
  let a = Ffs.Fs.mkdir fs root "a" ~perms:0o755 ~uid:0 in
  let b = Ffs.Fs.mkdir fs root "b" ~perms:0o755 ~uid:0 in
  let f = Ffs.Fs.create_file fs a "f" ~perms:0o644 ~uid:0 in
  Ffs.Fs.write fs f ~off:0 "data";
  Ffs.Fs.rename fs a "f" b "g";
  expect_error Ffs.Fs.ENOENT (fun () -> Ffs.Fs.lookup fs a "f");
  Alcotest.(check int) "moved" f (Ffs.Fs.lookup fs b "g");
  (* Rename over an existing file replaces it. *)
  let h = Ffs.Fs.create_file fs b "h" ~perms:0o644 ~uid:0 in
  Ffs.Fs.write fs h ~off:0 "old";
  Ffs.Fs.rename fs b "g" b "h";
  Alcotest.(check string) "replaced" "data" (Ffs.Fs.read fs (Ffs.Fs.lookup fs b "h") ~off:0 ~len:4);
  (* Rename a directory across directories re-points "..". *)
  let sub = Ffs.Fs.mkdir fs a "sub" ~perms:0o755 ~uid:0 in
  Ffs.Fs.rename fs a "sub" b "sub";
  Alcotest.(check int) "dotdot re-pointed" b (Ffs.Fs.lookup fs sub "..")

let test_generations () =
  let fs = make_fs () in
  let root = Ffs.Fs.root fs in
  let f = Ffs.Fs.create_file fs root "f" ~perms:0o644 ~uid:0 in
  let gen = Ffs.Fs.generation fs f in
  Alcotest.(check bool) "valid" true (Ffs.Fs.valid_handle fs ~ino:f ~gen);
  Ffs.Fs.remove fs root "f";
  Alcotest.(check bool) "freed invalid" false (Ffs.Fs.valid_handle fs ~ino:f ~gen);
  (* Recreate until the slot is reused; the generation must differ. *)
  let f2 = Ffs.Fs.create_file fs root "f2" ~perms:0o644 ~uid:0 in
  if f2 = f then begin
    Alcotest.(check bool) "old gen stale" false (Ffs.Fs.valid_handle fs ~ino:f ~gen);
    Alcotest.(check bool) "new gen valid" true
      (Ffs.Fs.valid_handle fs ~ino:f2 ~gen:(Ffs.Fs.generation fs f2))
  end

let test_enospc () =
  let fs = make_fs ~nblocks:16 () in
  let f = Ffs.Fs.create_file fs (Ffs.Fs.root fs) "f" ~perms:0o600 ~uid:0 in
  expect_error Ffs.Fs.ENOSPC (fun () ->
      for i = 0 to 63 do
        Ffs.Fs.write fs f ~off:(i * 8192) (String.make 8192 'x')
      done)

let test_name_validation () =
  let fs = make_fs () in
  let root = Ffs.Fs.root fs in
  expect_error Ffs.Fs.EINVAL (fun () ->
      ignore (Ffs.Fs.create_file fs root "a/b" ~perms:0o644 ~uid:0));
  expect_error Ffs.Fs.EINVAL (fun () -> ignore (Ffs.Fs.create_file fs root "" ~perms:0o644 ~uid:0));
  expect_error Ffs.Fs.ENAMETOOLONG (fun () ->
      ignore (Ffs.Fs.create_file fs root (String.make 300 'n') ~perms:0o644 ~uid:0))

let test_setattr () =
  let fs = make_fs () in
  let f = Ffs.Fs.create_file fs (Ffs.Fs.root fs) "f" ~perms:0o644 ~uid:1 in
  let attr = Ffs.Fs.setattr fs f ~perms:0o400 ~uid:7 ~gid:9 () in
  Alcotest.(check int) "perms" 0o400 attr.Ffs.Inode.a_perms;
  Alcotest.(check int) "uid" 7 attr.Ffs.Inode.a_uid;
  Alcotest.(check int) "gid" 9 attr.Ffs.Inode.a_gid;
  Ffs.Fs.write fs f ~off:0 "0123456789";
  let attr = Ffs.Fs.setattr fs f ~size:4 () in
  Alcotest.(check int) "truncated" 4 attr.Ffs.Inode.a_size;
  Alcotest.(check string) "content cut" "0123" (Ffs.Fs.read fs f ~off:0 ~len:10)

let test_path_of () =
  let fs = make_fs () in
  let root = Ffs.Fs.root fs in
  Alcotest.(check (option string)) "root" (Some "/") (Ffs.Fs.path_of fs root);
  let docs = Ffs.Fs.mkdir fs root "docs" ~perms:0o755 ~uid:0 in
  let sub = Ffs.Fs.mkdir fs docs "drafts" ~perms:0o755 ~uid:0 in
  let f = Ffs.Fs.create_file fs sub "paper.tex" ~perms:0o644 ~uid:0 in
  Alcotest.(check (option string)) "nested file" (Some "/docs/drafts/paper.tex")
    (Ffs.Fs.path_of fs f);
  (* Renames update the path, including of files beneath a moved dir. *)
  Ffs.Fs.rename fs docs "drafts" root "final";
  Alcotest.(check (option string)) "after dir rename" (Some "/final/paper.tex")
    (Ffs.Fs.path_of fs f);
  Ffs.Fs.rename fs sub "paper.tex" sub "camera-ready.tex";
  Alcotest.(check (option string)) "after file rename" (Some "/final/camera-ready.tex")
    (Ffs.Fs.path_of fs f);
  Ffs.Fs.remove fs sub "camera-ready.tex";
  Alcotest.(check (option string)) "freed inode has no path" None (Ffs.Fs.path_of fs f)

let prop_write_read_roundtrip =
  QCheck.Test.make ~name:"write/read roundtrip at random offsets" ~count:100
    (QCheck.make QCheck.Gen.(pair (int_bound 30000) (string_size (int_range 1 5000))))
    (fun (off, data) ->
      let fs = make_fs ~nblocks:64 () in
      let f = Ffs.Fs.create_file fs (Ffs.Fs.root fs) "f" ~perms:0o600 ~uid:0 in
      Ffs.Fs.write fs f ~off data;
      Ffs.Fs.read fs f ~off ~len:(String.length data) = data)

let prop_dir_add_remove =
  QCheck.Test.make ~name:"create n files, readdir sees n" ~count:30
    (QCheck.make QCheck.Gen.(int_range 1 40))
    (fun n ->
      let fs = make_fs () in
      let root = Ffs.Fs.root fs in
      for i = 0 to n - 1 do
        ignore (Ffs.Fs.create_file fs root (Printf.sprintf "f%03d" i) ~perms:0o644 ~uid:0)
      done;
      List.length (Ffs.Fs.readdir fs root) = n + 2)

(* Reference-model property: a random sequence of writes, truncates
   and extends against one file must match a plain byte-array model at
   every read. This exercises bmap across direct/indirect boundaries,
   read-modify-write, sparse holes and truncation interactions. *)
let prop_file_matches_byte_model =
  let op_gen =
    QCheck.Gen.(
      oneof
        [
          map2 (fun off s -> `Write (off, s)) (int_bound 150_000) (string_size (int_range 1 3000));
          map (fun size -> `Truncate size) (int_bound 150_000);
          map2 (fun off len -> `Read (off, len)) (int_bound 160_000) (int_bound 4000);
        ])
  in
  QCheck.Test.make ~name:"file ops match byte-array model" ~count:30
    (QCheck.make (QCheck.Gen.list_size (QCheck.Gen.int_range 3 25) op_gen))
    (fun ops ->
      let fs = make_fs ~nblocks:256 () in
      let f = Ffs.Fs.create_file fs (Ffs.Fs.root fs) "model" ~perms:0o600 ~uid:0 in
      let model = ref Bytes.empty in
      let ensure n =
        if Bytes.length !model < n then begin
          let bigger = Bytes.make n '\000' in
          Bytes.blit !model 0 bigger 0 (Bytes.length !model);
          model := bigger
        end
      in
      List.for_all
        (fun op ->
          match op with
          | `Write (off, s) ->
            Ffs.Fs.write fs f ~off s;
            ensure (off + String.length s);
            Bytes.blit_string s 0 !model off (String.length s);
            true
          | `Truncate size ->
            ignore (Ffs.Fs.setattr fs f ~size ());
            let fresh = Bytes.make size '\000' in
            Bytes.blit !model 0 fresh 0 (min size (Bytes.length !model));
            model := fresh;
            true
          | `Read (off, len) ->
            let got = Ffs.Fs.read fs f ~off ~len in
            let avail = max 0 (min len (Bytes.length !model - off)) in
            let expect = if avail = 0 then "" else Bytes.sub_string !model off avail in
            got = expect)
        ops)

let suite =
  [
    Alcotest.test_case "blockdev basics" `Quick test_blockdev;
    Alcotest.test_case "seek model" `Quick test_seek_model;
    Alcotest.test_case "create/write/read" `Quick test_create_write_read;
    Alcotest.test_case "overwrite and sparse extend" `Quick test_overwrite_and_extend;
    Alcotest.test_case "large file through indirects" `Slow test_large_file_indirect;
    Alcotest.test_case "directories" `Quick test_directories;
    Alcotest.test_case "remove and rmdir" `Quick test_remove_and_rmdir;
    Alcotest.test_case "hard links" `Quick test_hard_links;
    Alcotest.test_case "symlinks" `Quick test_symlinks;
    Alcotest.test_case "rename" `Quick test_rename;
    Alcotest.test_case "handle generations" `Quick test_generations;
    Alcotest.test_case "out of space" `Quick test_enospc;
    Alcotest.test_case "name validation" `Quick test_name_validation;
    Alcotest.test_case "setattr" `Quick test_setattr;
    Alcotest.test_case "path_of" `Quick test_path_of;
    QCheck_alcotest.to_alcotest prop_write_read_roundtrip;
    QCheck_alcotest.to_alcotest prop_dir_add_remove;
    QCheck_alcotest.to_alcotest prop_file_matches_byte_model;
  ]
