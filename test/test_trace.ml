(* The observability layer itself: metrics primitives under property
   tests (bucket monotonicity, count/sum conservation under merge),
   span-stack balance under randomized interleavings, ring-buffer
   retention, sink delivery, and the end-to-end determinism the
   golden-trace file relies on. *)

module Metrics = Trace.Metrics

(* A tracer over an explicit hand-cranked clock. *)
let make_tracer ?capacity ?metrics () =
  let now = ref 0. in
  let t = Trace.create ?capacity ?metrics ~now:(fun () -> !now) () in
  (t, now)

(* --- metrics: counters and gauges ----------------------------------- *)

let test_counters_and_gauges () =
  let m = Metrics.create () in
  Alcotest.(check int) "absent counter reads 0" 0 (Metrics.counter m "x");
  Metrics.incr m "x";
  Metrics.incr m "x" ~by:41;
  Alcotest.(check int) "incr accumulates" 42 (Metrics.counter m "x");
  Alcotest.(check bool) "absent gauge" true (Metrics.gauge m "g" = None);
  Metrics.set_gauge m "g" 1.5;
  Metrics.set_gauge m "g" 2.5;
  Alcotest.(check bool) "gauge keeps last" true (Metrics.gauge m "g" = Some 2.5);
  Alcotest.(check (list string)) "sorted names" [ "a"; "x" ]
    (Metrics.incr m "a";
     List.map fst (Metrics.counters m));
  Metrics.reset m;
  Alcotest.(check int) "reset clears" 0 (Metrics.counter m "x")

(* --- metrics: histogram properties ----------------------------------- *)

let test_bucket_validation () =
  let m = Metrics.create () in
  let bad b = Alcotest.check_raises "rejected" (Invalid_argument "Metrics.histogram: bucket bounds not strictly increasing") (fun () -> ignore (Metrics.histogram m ~buckets:b "h")) in
  bad [| 1.; 1. |];
  bad [| 2.; 1. |];
  Alcotest.check_raises "empty rejected"
    (Invalid_argument "Metrics.histogram: empty buckets") (fun () ->
      ignore (Metrics.histogram m ~buckets:[||] "h2"));
  Alcotest.check_raises "non-finite rejected"
    (Invalid_argument "Metrics.histogram: non-finite bucket bound") (fun () ->
      ignore (Metrics.histogram m ~buckets:[| 1.; infinity |] "h3"));
  (* default grid is itself strictly increasing *)
  let b = Metrics.default_buckets in
  for i = 1 to Array.length b - 1 do
    Alcotest.(check bool) "default grid monotone" true (b.(i) > b.(i - 1))
  done

(* Reference bucketing: first bound >= v, else overflow. *)
let ref_index bounds v =
  let n = Array.length bounds in
  let rec go i = if i >= n then n else if bounds.(i) >= v then i else go (i + 1) in
  go 0

let gen_bounds =
  (* strictly increasing positive bounds, built from positive gaps *)
  QCheck.Gen.(
    map
      (fun gaps ->
        let acc = ref 0. in
        Array.of_list
          (List.map
             (fun g ->
               acc := !acc +. (float_of_int g /. 16.) +. 0.0625;
               !acc)
             gaps))
      (list_size (int_range 1 12) (int_range 0 64)))

let gen_values = QCheck.Gen.(list_size (int_range 0 200) (float_bound_inclusive 10.))

let prop_histogram_conservation =
  QCheck.Test.make ~name:"histogram conserves count/sum and buckets correctly"
    ~count:200
    (QCheck.make QCheck.Gen.(pair gen_bounds gen_values))
    (fun (bounds, values) ->
      let m = Metrics.create () in
      let h = Metrics.histogram m ~buckets:bounds "h" in
      List.iter (Metrics.observe h) values;
      let counts = Metrics.bucket_counts h in
      (* every observation landed in exactly the reference bucket *)
      let expect = Array.make (Array.length bounds + 1) 0 in
      List.iter (fun v -> let i = ref_index bounds v in expect.(i) <- expect.(i) + 1) values;
      counts = expect
      && Metrics.count h = List.length values
      && abs_float (Metrics.sum h -. List.fold_left ( +. ) 0. values) < 1e-9
      && Array.fold_left ( + ) 0 counts = Metrics.count h)

let prop_histogram_merge =
  QCheck.Test.make ~name:"merge = histogram of concatenated observations" ~count:200
    (QCheck.make QCheck.Gen.(triple gen_bounds gen_values gen_values))
    (fun (bounds, xs, ys) ->
      let m = Metrics.create () in
      let ha = Metrics.histogram m ~buckets:bounds "a" in
      let hb = Metrics.histogram m ~buckets:bounds "b" in
      let hc = Metrics.histogram m ~buckets:bounds "c" in
      List.iter (Metrics.observe ha) xs;
      List.iter (Metrics.observe hb) ys;
      List.iter (Metrics.observe hc) (xs @ ys);
      let hm = Metrics.merge ha hb in
      Metrics.bucket_counts hm = Metrics.bucket_counts hc
      && Metrics.count hm = Metrics.count hc
      && abs_float (Metrics.sum hm -. Metrics.sum hc) < 1e-9)

let test_merge_rejects_mismatch () =
  let m = Metrics.create () in
  let a = Metrics.histogram m ~buckets:[| 1.; 2. |] "a" in
  let b = Metrics.histogram m ~buckets:[| 1.; 3. |] "b" in
  Alcotest.check_raises "incompatible bounds"
    (Invalid_argument "Metrics.merge: incompatible bucket bounds") (fun () ->
      ignore (Metrics.merge a b))

let test_cumulative_and_quantile () =
  let m = Metrics.create () in
  let h = Metrics.histogram m ~buckets:[| 1.; 2.; 4. |] "h" in
  List.iter (Metrics.observe h) [ 0.5; 0.7; 1.5; 3.0; 100.0 ];
  Alcotest.(check (array int)) "cumulative monotone" [| 2; 3; 4; 5 |] (Metrics.cumulative h);
  Alcotest.(check (float 0.)) "p0 in first bucket" 1. (Metrics.quantile h 0.2);
  Alcotest.(check (float 0.)) "median" 2. (Metrics.quantile h 0.5);
  Alcotest.(check bool) "p100 overflows" true (Metrics.quantile h 1.0 = infinity);
  Alcotest.(check bool) "quantile monotone in q" true
    (Metrics.quantile h 0.1 <= Metrics.quantile h 0.5
    && Metrics.quantile h 0.5 <= Metrics.quantile h 0.9)

(* --- spans: balance and nesting under random interleavings ----------- *)

(* Run a random well-bracketed begin/end program against the tracer,
   with clock advances in between, then check the recorded spans are
   balanced and properly nested. Op > 0: push a span; op = 0: pop if
   possible. *)
let run_program (t, now) ops =
  let stack = ref [] in
  List.iter
    (fun op ->
      now := !now +. 0.25;
      if op > 0 || !stack = [] then
        stack := Trace.begin_span t (Printf.sprintf "s%d" (op mod 5)) :: !stack
      else begin
        match !stack with
        | id :: rest ->
          Trace.end_span t id;
          stack := rest
        | [] -> ()
      end)
    ops;
  List.iter (fun id -> now := !now +. 0.25; Trace.end_span t id) !stack

let prop_span_balance =
  QCheck.Test.make ~name:"span stack balances under random interleavings" ~count:300
    (QCheck.make QCheck.Gen.(list_size (int_range 0 120) (int_range 0 3)))
    (fun ops ->
      let (t, now) = make_tracer () in
      run_program (t, now) ops;
      let spans = Trace.spans t in
      (* every begin got exactly one end, ids unique *)
      Trace.depth t = 0
      && List.length spans
         = List.length
             (List.sort_uniq compare (List.map (fun (s : Trace.span) -> s.Trace.id) spans))
      (* intervals well-formed and children strictly inside parents *)
      && List.for_all
           (fun (s : Trace.span) ->
             s.Trace.t_begin <= s.Trace.t_end && s.Trace.self >= 0.)
           spans
      && List.for_all
           (fun (s : Trace.span) ->
             s.Trace.parent = -1
             || List.exists
                  (fun (p : Trace.span) ->
                    p.Trace.id = s.Trace.parent
                    && p.Trace.t_begin <= s.Trace.t_begin
                    && s.Trace.t_end <= p.Trace.t_end)
                  spans)
           spans
      (* no crossing: any two intervals are nested or disjoint *)
      && List.for_all
           (fun (a : Trace.span) ->
             List.for_all
               (fun (b : Trace.span) ->
                 a.Trace.id = b.Trace.id
                 || a.Trace.t_end <= b.Trace.t_begin
                 || b.Trace.t_end <= a.Trace.t_begin
                 || (a.Trace.t_begin <= b.Trace.t_begin && b.Trace.t_end <= a.Trace.t_end)
                 || (b.Trace.t_begin <= a.Trace.t_begin && a.Trace.t_end <= b.Trace.t_end))
               spans)
           spans)

(* self-time: parent self = duration minus direct children *)
let test_self_time () =
  let (t, now) = make_tracer () in
  Trace.span t "parent" (fun () ->
      now := !now +. 1.;
      Trace.span t "child1" (fun () -> now := !now +. 2.);
      now := !now +. 3.;
      Trace.span t "child2" (fun () -> now := !now +. 4.);
      now := !now +. 5.);
  let find name = List.find (fun (s : Trace.span) -> s.Trace.name = name) (Trace.spans t) in
  let p = find "parent" in
  Alcotest.(check (float 1e-9)) "parent duration" 15. (p.Trace.t_end -. p.Trace.t_begin);
  Alcotest.(check (float 1e-9)) "parent self" 9. p.Trace.self;
  Alcotest.(check (float 1e-9)) "child1 self" 2. (find "child1").Trace.self;
  (* self-times of a trace sum to total elapsed time *)
  let total = List.fold_left (fun acc (s : Trace.span) -> acc +. s.Trace.self) 0. (Trace.spans t) in
  Alcotest.(check (float 1e-9)) "self times sum to wall" 15. total

let test_misuse_raises () =
  let (t, _) = make_tracer () in
  (try
     Trace.end_span t 99;
     Alcotest.fail "end without begin must raise"
   with Invalid_argument _ -> ());
  let a = Trace.begin_span t "a" in
  let b = Trace.begin_span t "b" in
  (try
     Trace.end_span t a;
     Alcotest.fail "crossing end must raise"
   with Invalid_argument _ -> ());
  Trace.end_span t b;
  Trace.end_span t a;
  Alcotest.(check int) "balanced after recovery" 0 (Trace.depth t)

let test_span_closes_on_exception () =
  let (t, _) = make_tracer () in
  (try Trace.span t "boom" (fun () -> failwith "x") with Failure _ -> ());
  Alcotest.(check int) "stack unwound" 0 (Trace.depth t);
  Alcotest.(check int) "span recorded" 1 (List.length (Trace.spans t))

let test_null_tracer_noops () =
  let t = Trace.null in
  Alcotest.(check bool) "disabled" false (Trace.enabled t);
  let id = Trace.begin_span t "x" in
  Trace.end_span t id;
  Trace.instant t "y";
  Alcotest.(check int) "nothing recorded" 0 (List.length (Trace.spans t));
  Alcotest.(check int) "depth 0" 0 (Trace.depth t);
  Alcotest.(check string) "span passes value through" "v"
    (Trace.span t "z" (fun () -> "v"))

(* --- ring buffer and sink -------------------------------------------- *)

let test_ring_retention () =
  let (t, _) = make_tracer ~capacity:4 () in
  let seen = ref [] in
  Trace.set_sink t (Some (fun s -> seen := s.Trace.name :: !seen));
  for i = 1 to 10 do
    Trace.instant t (Printf.sprintf "e%d" i)
  done;
  let names = List.map (fun (s : Trace.span) -> s.Trace.name) (Trace.spans t) in
  Alcotest.(check (list string)) "last capacity spans retained" [ "e7"; "e8"; "e9"; "e10" ] names;
  Alcotest.(check int) "dropped counted" 6 (Trace.dropped t);
  Alcotest.(check int) "sink saw everything" 10 (List.length !seen);
  Trace.reset t;
  Alcotest.(check int) "reset empties ring" 0 (List.length (Trace.spans t));
  Alcotest.(check int) "reset clears dropped" 0 (Trace.dropped t)

let test_metrics_hookup () =
  let m = Metrics.create () in
  let (t, now) = make_tracer ~metrics:m () in
  Trace.span t "op" (fun () -> now := !now +. 0.001);
  Trace.span t "op" (fun () -> now := !now +. 0.002);
  Alcotest.(check int) "span counter" 2 (Metrics.counter m "span.op");
  let h = Metrics.histogram m "span.self.op" in
  Alcotest.(check int) "histogram count" 2 (Metrics.count h);
  Alcotest.(check (float 1e-9)) "histogram sum = total self" 0.003 (Metrics.sum h)

(* --- forest reconstruction and rendering ------------------------------ *)

let test_forest_and_render () =
  let (t, now) = make_tracer () in
  let tick () = now := !now +. 1. in
  Trace.span t "root" (fun () ->
      tick ();
      Trace.span t "leaf" (fun () -> tick ());
      Trace.span t "leaf" (fun () -> tick ());
      Trace.span t "leaf" (fun () -> tick ());
      Trace.span t "other" (fun () -> tick ()));
  Trace.instant t "tail";
  let forest = Trace.forest (Trace.spans t) in
  Alcotest.(check int) "two roots" 2 (List.length forest);
  Alcotest.(check string) "collapsed rendering"
    "root\n  leaf x3\n  other\ntail\n"
    (Trace.render_forest forest);
  Alcotest.(check string) "uncollapsed rendering"
    "root\n  leaf\n  leaf\n  leaf\n  other\ntail\n"
    (Trace.render_forest ~collapse:false forest)

let test_jsonl () =
  let (t, now) = make_tracer () in
  Trace.span t "a\"b" ~attrs:[ ("k", "v1") ] (fun () -> now := !now +. 0.5);
  let s = List.hd (Trace.spans t) in
  Alcotest.(check string) "json escaping and shape"
    "{\"id\":1,\"parent\":-1,\"name\":\"a\\\"b\",\"begin\":0.000000000,\"end\":0.500000000,\"self\":0.500000000,\"attrs\":{\"k\":\"v1\"}}"
    (Trace.span_to_jsonl s)

(* --- end-to-end determinism ------------------------------------------ *)

(* Two identical traced deployments must produce byte-identical span
   forests — the property the golden file and latency_breakdown bench
   rely on. *)
let test_traced_run_deterministic () =
  let run () =
    let d = Discfs.Deploy.make ~tracing:true () in
    let bob = Discfs.Deploy.new_identity d in
    let client = Discfs.Deploy.attach d ~identity:bob () in
    let cred =
      Discfs.Deploy.admin_issue d
        ~licensees:(Printf.sprintf "%S" (Discfs.Client.principal client))
        ~conditions:"app_domain == \"DisCFS\" -> \"RWX\";" ()
    in
    (match Discfs.Client.submit_credential client cred with
    | Ok _ -> ()
    | Error e -> failwith e);
    let _ = Discfs.Client.create client ~dir:(Discfs.Client.root client) "f" () in
    Trace.render_forest (Trace.forest (Trace.spans d.Discfs.Deploy.trace))
  in
  let a = run () and b = run () in
  Alcotest.(check string) "identical forests" a b;
  Alcotest.(check bool) "non-trivial trace" true (String.length a > 100)

let suite =
  [
    Alcotest.test_case "counters and gauges" `Quick test_counters_and_gauges;
    Alcotest.test_case "bucket monotonicity enforced" `Quick test_bucket_validation;
    QCheck_alcotest.to_alcotest prop_histogram_conservation;
    QCheck_alcotest.to_alcotest prop_histogram_merge;
    Alcotest.test_case "merge rejects mismatched buckets" `Quick test_merge_rejects_mismatch;
    Alcotest.test_case "cumulative and quantile" `Quick test_cumulative_and_quantile;
    QCheck_alcotest.to_alcotest prop_span_balance;
    Alcotest.test_case "self-time accounting" `Quick test_self_time;
    Alcotest.test_case "unbalanced end raises" `Quick test_misuse_raises;
    Alcotest.test_case "span closes on exception" `Quick test_span_closes_on_exception;
    Alcotest.test_case "null tracer is a no-op" `Quick test_null_tracer_noops;
    Alcotest.test_case "ring retention + sink" `Quick test_ring_retention;
    Alcotest.test_case "metrics hookup" `Quick test_metrics_hookup;
    Alcotest.test_case "forest and rendering" `Quick test_forest_and_render;
    Alcotest.test_case "jsonl export" `Quick test_jsonl;
    Alcotest.test_case "traced run is deterministic" `Quick test_traced_run_deterministic;
  ]
