(* Multi-server topology tests: the sharded namespace, signed
   redirects, replica leases and crash recovery — end-to-end through
   IKE, ESP, NFS, KeyNote and the cluster control program.

   The load-bearing property is the first QCheck test: a sharded
   4-frontend cluster is observationally equivalent to the
   single-server deployment for every random op sequence. Redirects,
   lease invalidations and lazy attaches must never change what a
   client reads back. *)

module Proto = Nfs.Proto
module Assertion = Keynote.Assertion
module Deploy = Discfs.Deploy
module Client = Discfs.Client
module Server = Discfs.Server
module Cluster = Discfs.Cluster
module CC = Discfs.Cluster_client
module Shard_map = Discfs.Shard_map
module Stats = Simnet.Stats
module Clock = Simnet.Clock
module Dsa = Dcrypto.Dsa

let quoted p = Printf.sprintf "\"%s\"" p

let root_conditions fh value =
  Printf.sprintf "(app_domain == \"DisCFS\") && (HANDLE == \"%d\") -> \"%s\";" fh.Proto.ino value

(* A cluster plus one cluster client granted RWX on the root
   directory, so it can create files — the cluster analogue of
   test_discfs's [setup]. *)
let csetup ?nshards ?(servers = 3) ?(clients = 1) ~seed () =
  let c, ccs = Deploy.make_cluster ?nshards ~servers ~clients ~seed () in
  List.iter
    (fun cc ->
      let cred =
        Cluster.admin_issue c
          ~licensees:(quoted (CC.principal cc))
          ~conditions:(root_conditions (CC.root cc) "RWX")
          ()
      in
      match CC.submit_credential cc cred with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e)
    ccs;
  (c, ccs)

(* --- the shard map ---------------------------------------------------- *)

let test_shard_map_unit () =
  let m = Shard_map.make ~nservers:4 ~nshards:32 in
  Alcotest.(check int) "version 1" 1 (Shard_map.version m);
  Alcotest.(check int) "nservers" 4 (Shard_map.nservers m);
  Alcotest.(check int) "nshards" 32 (Shard_map.nshards m);
  (* Round-robin striping covers every server. *)
  for s = 0 to 31 do
    Alcotest.(check int) "striped owner" (s mod 4) (Shard_map.shard m s).Shard_map.owner
  done;
  (* Ownership answers writes and reads; nobody else serves. *)
  let ino = 42 in
  let o = Shard_map.owner m ~ino in
  Alcotest.(check bool) "owner serves writes" true (Shard_map.serves m ~server:o ~ino ~write:true);
  let stranger = (o + 1) mod 4 in
  Alcotest.(check bool) "non-owner no reads" false
    (Shard_map.serves m ~server:stranger ~ino ~write:false);
  (* A replica serves reads only, and versions advance one per change. *)
  let sh = Shard_map.shard_of m ~ino in
  let m2 = Shard_map.add_replica m ~shard:sh ~server:stranger in
  Alcotest.(check int) "add_replica bumps" 2 (Shard_map.version m2);
  Alcotest.(check bool) "replica reads" true
    (Shard_map.serves m2 ~server:stranger ~ino ~write:false);
  Alcotest.(check bool) "replica no writes" false
    (Shard_map.serves m2 ~server:stranger ~ino ~write:true);
  (* Moving ownership strips the new owner from the replica list and
     does not grandfather the old owner in. *)
  let m3 = Shard_map.move m2 ~shard:sh ~owner:stranger in
  Alcotest.(check int) "move bumps" 3 (Shard_map.version m3);
  Alcotest.(check int) "new owner" stranger (Shard_map.owner m3 ~ino);
  Alcotest.(check (list int)) "new owner not a replica" [] (Shard_map.replicas m3 ~ino);
  Alcotest.(check bool) "old owner demoted" false
    (Shard_map.serves m3 ~server:o ~ino ~write:false);
  (* Codec round-trip preserves the observable map. *)
  let e = Xdr.Enc.create () in
  Shard_map.encode e m3;
  let m3' = Shard_map.decode (Xdr.Dec.of_string (Xdr.Enc.to_string e)) in
  Alcotest.(check string) "codec round-trip" (Shard_map.to_string m3) (Shard_map.to_string m3');
  (* Decode discipline: a zero-server map is malformed, not a crash
     further down the line. *)
  let e = Xdr.Enc.create () in
  Xdr.Enc.uint32 e 7;
  Xdr.Enc.uint32 e 0;
  Xdr.Enc.uint32 e 1;
  Alcotest.check_raises "zero servers rejected" (Xdr.Decode_error "shard map: nservers < 1")
    (fun () -> ignore (Shard_map.decode (Xdr.Dec.of_string (Xdr.Enc.to_string e))));
  (* The client-side placeholder is older than every real map. *)
  Alcotest.(check int) "placeholder is version 0" 0
    (Shard_map.version (Shard_map.placeholder ~nservers:4))

(* --- smoke: create/write/read through the cluster --------------------- *)

let test_cluster_smoke () =
  let c, ccs = csetup ~seed:"topo-smoke" () in
  let cc = List.hd ccs in
  let root = CC.root cc in
  let fh, _, _ = CC.create cc ~dir:root "paper.tex" () in
  CC.write_all cc fh "Secure and Flexible Global File Sharing";
  Alcotest.(check string) "read back" "Secure and Flexible Global File Sharing"
    (CC.read_all cc fh);
  let names = List.map fst (CC.readdir cc root) in
  Alcotest.(check bool) "listed" true (List.mem "paper.tex" names);
  (* Metadata ops serve at the home frontend: no redirects yet. *)
  Alcotest.(check int) "no redirects in the happy path" 0
    (Stats.get (Cluster.stats c) "redirect.sent");
  ignore (CC.getattr cc fh)

(* --- redirects on a stale map ----------------------------------------- *)

let test_reshard_redirects () =
  let c, ccs = csetup ~seed:"topo-reshard" () in
  let cc = List.hd ccs in
  let root = CC.root cc in
  let fh, _, _ = CC.create cc ~dir:root "hot.dat" () in
  CC.write_all cc fh "v1";
  let stats = Cluster.stats c in
  let map = Cluster.map c in
  let shard = Shard_map.shard_of map ~ino:fh.Proto.ino in
  let old_owner = Shard_map.owner map ~ino:fh.Proto.ino in
  let new_owner = (old_owner + 1) mod Cluster.nservers c in
  let v_before = CC.map_version cc in
  Cluster.reshard c ~shard ~owner:new_owner;
  Alcotest.(check int) "reshard counted" 1 (Stats.get stats "topo.reshards");
  (* The client's cached map still names the old owner; its next write
     is bounced with a signed redirect and lands on the new owner. *)
  CC.write_all cc fh "v2";
  Alcotest.(check bool) "redirect sent" true (Stats.get stats "redirect.sent" >= 1);
  Alcotest.(check bool) "redirect followed" true (Stats.get stats "redirect.followed" >= 1);
  Alcotest.(check int) "no bad signatures" 0 (Stats.get stats "redirect.bad_sig");
  Alcotest.(check int) "map refreshed past the reshard" (v_before + 1) (CC.map_version cc);
  Alcotest.(check string) "data intact after move" "v2" (CC.read_all cc fh);
  (* Now that the map is fresh, reads route straight to the new owner. *)
  let followed = Stats.get stats "redirect.followed" in
  ignore (CC.read_all cc fh);
  Alcotest.(check int) "no further redirects" followed (Stats.get stats "redirect.followed")

(* A forged redirect — right shape, wrong key — must be refused, not
   followed: redirects re-home requests, never authority. *)
let test_redirect_bad_signature () =
  let c, ccs = csetup ~servers:2 ~seed:"topo-forge" () in
  let cc = List.hd ccs in
  let root = CC.root cc in
  let fh, _, _ = CC.create cc ~dir:root "forged.dat" () in
  CC.write_all cc fh "x";
  let victim = fh.Proto.ino in
  let target = Shard_map.owner (Cluster.map c) ~ino:victim in
  let other = 1 - target in
  let mallory = Dsa.generate_key (Cluster.fork_drbg c ~label:"mallory") in
  let drbg = Cluster.fork_drbg c ~label:"forge-sign" in
  let forge ~conn:_ ~fh:(rfh : Proto.fh) ~op:_ =
    if rfh.Proto.ino <> victim then None
    else begin
      let principal = Cluster.server_principal c other in
      let preimage =
        Proto.redirect_preimage ~ino:rfh.Proto.ino ~gen:rfh.Proto.gen ~target:other
          ~version:(Shard_map.version (Cluster.map c))
          ~principal
      in
      let s = Dsa.sign ~key:mallory drbg preimage in
      let e = Xdr.Enc.create () in
      Xdr.Enc.uint32 e Proto.nfserr_moved;
      Proto.redirect_encode e
        { Proto.r_target = other; r_version = Shard_map.version (Cluster.map c);
          r_principal = principal; r_sig = Dsa.sig_encode s };
      Some (Xdr.Enc.to_string e)
    end
  in
  Nfs.Server.set_route (Server.nfs (Cluster.node_server c target)) forge;
  (match CC.read_all cc fh with
  | _ -> Alcotest.fail "forged redirect was followed"
  | exception Client.Discfs_error m ->
    Alcotest.(check string) "refused" "redirect signature verification failed" m);
  Alcotest.(check int) "counted" 1 (Stats.get (Cluster.stats c) "redirect.bad_sig");
  Alcotest.(check int) "not followed" 0 (Stats.get (Cluster.stats c) "redirect.followed")

(* Two frontends bouncing a handle between them (a corrupt map, or a
   bug) must surface as an error after [max_hops], not a livelock. *)
let test_redirect_loop_bound () =
  let c, ccs = csetup ~servers:2 ~seed:"topo-loop" () in
  let cc = List.hd ccs in
  let root = CC.root cc in
  let fh, _, _ = CC.create cc ~dir:root "pingpong.dat" () in
  CC.write_all cc fh "x";
  let victim = fh.Proto.ino in
  let drbg = Cluster.fork_drbg c ~label:"loop-sign" in
  (* Each node redirects the victim handle to the other, signed with
     its own (genuine) key: the signatures verify, only the hop bound
     stops the chase. *)
  let bounce ~from ~target =
    let key = Server.server_key (Cluster.node_server c from) in
    fun ~conn:_ ~fh:(rfh : Proto.fh) ~op:_ ->
      if rfh.Proto.ino <> victim then None
      else begin
        let principal = Cluster.server_principal c target in
        let version = Shard_map.version (Cluster.map c) in
        let preimage =
          Proto.redirect_preimage ~ino:rfh.Proto.ino ~gen:rfh.Proto.gen ~target ~version
            ~principal
        in
        let s = Dsa.sign ~key drbg preimage in
        let e = Xdr.Enc.create () in
        Xdr.Enc.uint32 e Proto.nfserr_moved;
        Proto.redirect_encode e
          { Proto.r_target = target; r_version = version; r_principal = principal;
            r_sig = Dsa.sig_encode s };
        Some (Xdr.Enc.to_string e)
      end
  in
  Nfs.Server.set_route (Server.nfs (Cluster.node_server c 0)) (bounce ~from:0 ~target:1);
  Nfs.Server.set_route (Server.nfs (Cluster.node_server c 1)) (bounce ~from:1 ~target:0);
  (match CC.read_all cc fh with
  | _ -> Alcotest.fail "loop not detected"
  | exception Client.Discfs_error m ->
    Alcotest.(check string) "hop bound" "redirect loop: hop bound exceeded" m);
  let stats = Cluster.stats c in
  Alcotest.(check int) "loop counted" 1 (Stats.get stats "redirect.loops");
  Alcotest.(check int) "followed max_hops - 1 times" (CC.max_hops - 1)
    (Stats.get stats "redirect.followed")

(* --- replicas: reads only, while the lease lives ---------------------- *)

let test_replica_serves_only_reads () =
  let c, ccs = csetup ~servers:2 ~seed:"topo-replica" () in
  let cc = List.hd ccs in
  let root = CC.root cc in
  let fh, _, _ = CC.create cc ~dir:root "shared.dat" () in
  CC.write_all cc fh "generation one";
  let stats = Cluster.stats c in
  let shard = Shard_map.shard_of (Cluster.map c) ~ino:fh.Proto.ino in
  let owner = Shard_map.owner (Cluster.map c) ~ino:fh.Proto.ino in
  let replica = 1 - owner in
  (match Cluster.add_replica c ~shard ~server:replica with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "lease granted" true (Stats.get stats "topo.lease.grants" >= 1);
  (* A raw connection pinned to the replica: reads are served locally,
     writes are redirected to the owner — a replica never mutates. *)
  let raw =
    Client.attach
      ~link:(Cluster.node_link c replica)
      ~rpc:(Cluster.node_rpc c replica)
      ~server:(Cluster.node_server c replica)
      ~identity:(Cluster.new_identity c)
      ~drbg:(Cluster.fork_drbg c ~label:"raw-replica") ~uid:2000 ()
  in
  let raw_cred =
    Cluster.admin_issue c
      ~licensees:(quoted (Client.principal raw))
      ~conditions:(root_conditions fh "RW") ()
  in
  (match Client.submit_credential raw raw_cred with Ok _ -> () | Error e -> Alcotest.fail e);
  Alcotest.(check string) "replica serves the read" "generation one"
    (Nfs.Client.read_all (Client.nfs raw) fh);
  (match Nfs.Client.write (Client.nfs raw) fh ~off:0 "nope" with
  | _ -> Alcotest.fail "replica accepted a write"
  | exception Proto.Nfs_moved r ->
    Alcotest.(check int) "write redirected to the owner" owner r.Proto.r_target);
  (* An owner-side write invalidates the lease; the replica then
     redirects reads until the lease is renewed. *)
  CC.write_all cc fh "generation two";
  Alcotest.(check bool) "invalidated" true (Stats.get stats "topo.lease.invalidations" >= 1);
  (match Nfs.Client.read_all (Client.nfs raw) fh with
  | _ -> Alcotest.fail "replica served a read on a dead lease"
  | exception Proto.Nfs_moved r ->
    Alcotest.(check int) "read redirected while lease dead" owner r.Proto.r_target);
  Alcotest.(check bool) "expired serve counted" true
    (Stats.get stats "topo.lease.expired_serves" >= 1);
  (match Cluster.renew_lease c ~shard ~server:replica with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check string) "renewed replica sees the new data" "generation two"
    (Nfs.Client.read_all (Client.nfs raw) fh)

(* --- crash recovery with a stale map ---------------------------------- *)

let test_stale_map_crash_recovery () =
  let c, ccs = csetup ~seed:"topo-crash" () in
  let cc = List.hd ccs in
  let root = CC.root cc in
  (* Find a file owned by a non-home frontend, so the client holds an
     open connection to the node we are about to kill. *)
  let rec mk i =
    if i > 64 then Alcotest.fail "no file landed on frontend 1"
    else
      let fh, _, _ = CC.create cc ~dir:root (Printf.sprintf "f%d.dat" i) () in
      if Shard_map.owner (Cluster.map c) ~ino:fh.Proto.ino = 1 then fh else mk (i + 1)
  in
  let fh = mk 0 in
  CC.write_all cc fh "survives the crash";
  Alcotest.(check string) "pre-crash read" "survives the crash" (CC.read_all cc fh);
  (* Kill frontend 1 and, while the client's map is stale, move the
     shard to frontend 2. The client's next read times out against
     the dead incarnation, reattaches, refreshes its map and lands on
     the new owner. *)
  let shard = Shard_map.shard_of (Cluster.map c) ~ino:fh.Proto.ino in
  Cluster.crash_and_restart c 1;
  Cluster.reshard c ~shard ~owner:2;
  let v_auth = Shard_map.version (Cluster.map c) in
  Alcotest.(check bool) "client map is stale" true (CC.map_version cc < v_auth);
  Alcotest.(check string) "read after crash + reshard" "survives the crash"
    (CC.read_all cc fh);
  let stats = Cluster.stats c in
  Alcotest.(check int) "restart counted" 1 (Stats.get stats "server.restarts");
  Alcotest.(check bool) "client reattached" true (Stats.get stats "topo.reattaches" >= 1);
  Alcotest.(check int) "map caught up" v_auth (CC.map_version cc);
  (* Data plane still consistent: a write through the new owner reads
     back everywhere the map allows. *)
  (* Same length as the original content: write_all does not
     truncate, here or on a single server. *)
  CC.write_all cc fh "rewritten after it";
  Alcotest.(check string) "post-crash write visible" "rewritten after it" (CC.read_all cc fh)

(* --- QCheck: sharded == single-server --------------------------------- *)

(* One abstract world: the same op interpreter runs against the
   single-server deployment and the 4-frontend cluster, and every
   observation (status codes, read data, directory listings, handle
   numbers) must match byte-for-byte. *)
type world = {
  w_root : Proto.fh;
  w_create : string -> (Proto.fh, string) result;
  w_write : Proto.fh -> string -> (unit, string) result;
  w_read : Proto.fh -> (string, string) result;
  w_remove : string -> (unit, string) result;
  w_readdir : unit -> (string * int) list;
}

let nfs_result f =
  match f () with
  | v -> Ok v
  | exception Proto.Nfs_error s -> Error (Proto.status_to_string s)
  | exception Client.Discfs_error m -> Error ("discfs: " ^ m)

let single_world seed =
  let d = Deploy.make ~seed () in
  let u = Deploy.attach d ~identity:(Deploy.new_identity d) ~uid:1000 () in
  let root = Client.root u in
  let cred =
    Deploy.admin_issue d
      ~licensees:(quoted (Client.principal u))
      ~conditions:(root_conditions root "RWX") ()
  in
  (match Client.submit_credential u cred with Ok _ -> () | Error e -> Alcotest.fail e);
  let n = Client.nfs u in
  {
    w_root = root;
    w_create =
      (fun name ->
        nfs_result (fun () ->
            let fh, _, _ = Client.create u ~dir:root name () in
            fh));
    w_write = (fun fh data -> nfs_result (fun () -> Nfs.Client.write_all n fh data));
    w_read = (fun fh -> nfs_result (fun () -> Nfs.Client.read_all n fh));
    w_remove = (fun name -> nfs_result (fun () -> Nfs.Client.remove n root name));
    w_readdir = (fun () -> Nfs.Client.readdir n root);
  }

let cluster_world seed =
  let _, ccs = csetup ~servers:4 ~seed () in
  let cc = List.hd ccs in
  let root = CC.root cc in
  {
    w_root = root;
    w_create =
      (fun name ->
        nfs_result (fun () ->
            let fh, _, _ = CC.create cc ~dir:root name () in
            fh));
    w_write = (fun fh data -> nfs_result (fun () -> CC.write_all cc fh data));
    w_read = (fun fh -> nfs_result (fun () -> CC.read_all cc fh));
    w_remove = (fun name -> nfs_result (fun () -> CC.remove cc root name));
    w_readdir = (fun () -> CC.readdir cc root);
  }

type eop =
  | ECreate of int (* slot *)
  | EWrite of int * int (* slot, payload tag *)
  | ERead of int
  | ERemove of int
  | EReaddir

let n_slots = 5

let gen_eop =
  QCheck.Gen.(
    oneof
      [
        map (fun s -> ECreate s) (int_bound (n_slots - 1));
        map2 (fun s p -> EWrite (s, p)) (int_bound (n_slots - 1)) (int_bound 9);
        map (fun s -> ERead s) (int_bound (n_slots - 1));
        map (fun s -> ERemove s) (int_bound (n_slots - 1));
        return EReaddir;
      ])

let gen_eops = QCheck.Gen.list_size (QCheck.Gen.int_range 4 16) gen_eop

let run_world w ops =
  let obs = Buffer.create 256 in
  let note fmt = Printf.ksprintf (fun s -> Buffer.add_string obs (s ^ "\n")) fmt in
  let files = Array.make n_slots None in
  let string_of_res pp = function Ok v -> "ok:" ^ pp v | Error s -> "err:" ^ s in
  List.iter
    (fun op ->
      match op with
      | ECreate s ->
        let r = w.w_create (Printf.sprintf "s%d" s) in
        (match r with Ok fh -> files.(s) <- Some fh | Error _ -> ());
        note "create %d -> %s" s
          (string_of_res (fun (fh : Proto.fh) -> Printf.sprintf "%d.%d" fh.Proto.ino fh.Proto.gen) r)
      | EWrite (s, p) -> (
        match files.(s) with
        | None -> note "write %d -> nofile" s
        | Some fh ->
          note "write %d -> %s" s
            (string_of_res (fun () -> "()") (w.w_write fh (Printf.sprintf "payload-%d-%d" s p))))
      | ERead s -> (
        match files.(s) with
        | None -> note "read %d -> nofile" s
        | Some fh -> note "read %d -> %s" s (string_of_res (fun d -> d) (w.w_read fh)))
      | ERemove s ->
        let r = w.w_remove (Printf.sprintf "s%d" s) in
        (match r with Ok () -> files.(s) <- None | Error _ -> ());
        note "remove %d -> %s" s (string_of_res (fun () -> "()") r)
      | EReaddir ->
        let entries =
          List.filter (fun (n, _) -> n <> "." && n <> "..") (w.w_readdir ())
          |> List.sort compare
        in
        note "readdir -> %s"
          (String.concat ","
             (List.map (fun (n, ino) -> Printf.sprintf "%s:%d" n ino) entries)))
    ops;
  Buffer.contents obs

let eq_count = ref 0

let prop_cluster_equivalence ops =
  incr eq_count;
  let seed = Printf.sprintf "topo-eq-%d" !eq_count in
  let single = run_world (single_world seed) ops in
  let cluster = run_world (cluster_world seed) ops in
  if String.equal single cluster then true
  else
    QCheck.Test.fail_reportf "observations diverge:@.single:@.%s@.cluster:@.%s" single cluster

let prop_equivalence =
  QCheck.Test.make ~name:"sharded cluster is observationally a single server" ~count:8
    (QCheck.make gen_eops) prop_cluster_equivalence

(* --- byte determinism ------------------------------------------------- *)

(* Everything above is deterministic by construction; pin it. Two
   fresh runs of a workload that exercises sharding, redirects,
   leases and invalidation must agree on every byte of observable
   state: reads, stats counters and the virtual clock. *)
let determinism_run () =
  let c, ccs = csetup ~servers:3 ~clients:2 ~seed:"topo-det" () in
  let[@warning "-8"] [ a; b ] = ccs in
  let digest = Buffer.create 256 in
  let note fmt = Printf.ksprintf (fun s -> Buffer.add_string digest (s ^ "\n")) fmt in
  let fhs =
    List.map
      (fun i ->
        let fh, _, _ = CC.create a ~dir:(CC.root a) (Printf.sprintf "d%d" i) () in
        CC.write_all a fh (Printf.sprintf "body-%d" i);
        fh)
      [ 0; 1; 2; 3 ]
  in
  (* A reshard plus replica churn mid-workload, so the digest covers
     the interesting paths. *)
  let fh0 = List.hd fhs in
  let shard = Shard_map.shard_of (Cluster.map c) ~ino:fh0.Proto.ino in
  let owner = Shard_map.owner (Cluster.map c) ~ino:fh0.Proto.ino in
  Cluster.reshard c ~shard ~owner:((owner + 1) mod 3);
  (match Cluster.add_replica c ~shard ~server:owner with Ok () -> () | Error e -> Alcotest.fail e);
  List.iteri (fun i fh -> note "a reads %d: %s" i (CC.read_all a fh)) fhs;
  CC.write_all a fh0 "rewritten";
  note "a rereads 0: %s" (CC.read_all a fh0);
  ignore (CC.readdir b (CC.root b));
  note "clock %.9f" (Clock.now (Cluster.clock c));
  note "map v%d" (Shard_map.version (Cluster.map c));
  List.iter (fun (k, v) -> note "%s=%d" k v)
    (List.sort compare (Stats.to_list (Cluster.stats c)));
  Buffer.contents digest

let test_byte_determinism () =
  let first = determinism_run () in
  let second = determinism_run () in
  Alcotest.(check string) "double run byte-identical" first second

(* --- the Bonnie cluster backend --------------------------------------- *)

(* The uniform benchmark surface over the server set: a workload that
   knows nothing about shards must survive a reshard mid-stream. *)
let test_cluster_backend () =
  let b = Bonnie.Backend.discfs_cluster ~servers:3 () in
  let dir = b.Bonnie.Backend.mkdir b.Bonnie.Backend.root "bench" in
  let f = b.Bonnie.Backend.create dir "data" in
  b.Bonnie.Backend.write f ~off:0 "cluster-backed bytes";
  Alcotest.(check string) "read back" "cluster-backed bytes" (b.Bonnie.Backend.read f ~off:0 ~len:64);
  Alcotest.(check (list string)) "listing" [ "data" ] (b.Bonnie.Backend.readdir dir);
  let cluster, cc =
    match Bonnie.Backend.discfs_cluster_parts b with
    | Some parts -> parts
    | None -> Alcotest.fail "no cluster behind the backend"
  in
  (* Move every file's shard out from under the cached map; the
     backend's reads must be corrected by redirects, not break. *)
  let m = Cluster.map cluster in
  for s = 0 to Shard_map.nshards m - 1 do
    Cluster.reshard cluster ~shard:s ~owner:(((Shard_map.shard m s).Shard_map.owner + 1) mod 3)
  done;
  Alcotest.(check string) "read back after total reshard" "cluster-backed bytes"
    (b.Bonnie.Backend.read f ~off:0 ~len:64);
  Alcotest.(check bool) "redirects happened" true
    (Stats.get (Cluster.stats cluster) "redirect.followed" >= 1);
  Alcotest.(check int) "map caught up" (Shard_map.version (Cluster.map cluster)) (CC.map_version cc)

let suite =
  [
    Alcotest.test_case "shard map: striping, serving, codec" `Quick test_shard_map_unit;
    Alcotest.test_case "cluster smoke: create/write/read" `Quick test_cluster_smoke;
    Alcotest.test_case "reshard: stale map corrected by signed redirect" `Quick
      test_reshard_redirects;
    Alcotest.test_case "forged redirect is refused" `Quick test_redirect_bad_signature;
    Alcotest.test_case "redirect loop stops at the hop bound" `Quick test_redirect_loop_bound;
    Alcotest.test_case "replica serves reads only, under a live lease" `Quick
      test_replica_serves_only_reads;
    Alcotest.test_case "crash + reshard: timeout, reattach, refreshed map" `Quick
      test_stale_map_crash_recovery;
    QCheck_alcotest.to_alcotest ~long:false prop_equivalence;
    Alcotest.test_case "byte determinism across fresh runs" `Quick test_byte_determinism;
    Alcotest.test_case "bonnie backend over the cluster" `Quick test_cluster_backend;
  ]
