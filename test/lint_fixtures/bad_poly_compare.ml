(* Fixture: polymorphic comparison instantiated at bignum/crypto
   types. Each of these must use the module's dedicated comparison. *)

let nat_eq a b = a = Bignum.Nat.add b Bignum.Nat.one

let nat_order (a : Bignum.Nat.t) b = compare a b

let key_differs (k : Dcrypto.Dsa.public) (k' : Dcrypto.Dsa.public) = k <> k'

let latest_share (a : Dcrypto.Dh.share) b = max a b

let sort_assertions (l : Keynote.Assertion.t list) = List.sort compare l
