(* Fixture: abort-style failure in what poses as a wire-decode layer
   (checked under the decode role). Decoders must return result or
   raise the layer's dedicated decode exception. *)

let decode_kind = function
  | 0 -> `Reg
  | 1 -> `Dir
  | _ -> failwith "bad kind"

let decode_flag = function
  | 0 -> false
  | 1 -> true
  | _ -> assert false
