(* Fixture: secret-typed values reaching observability sinks. *)

let pp_key (_ : Format.formatter) (_ : Dcrypto.Dsa.private_key) = ()

let leak_via_format (k : Dcrypto.Dsa.private_key) = Format.asprintf "%a" pp_key k

let leak_wrapped (s : Dcrypto.Secret.t) = Format.asprintf "%a" (fun _ _ -> ()) s
