(* Fixture: direct std-stream output, which library code must route
   through Trace instead. *)

let shout () = print_endline "hello"

let formatted n = Printf.printf "%d\n" n

let warn msg = Format.eprintf "warning: %s@." msg

let raw () = output_string stderr "boom\n"
