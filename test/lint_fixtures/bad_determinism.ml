(* Fixture: every flavour of ambient nondeterminism the determinism
   rule must catch. *)

let roll () = Random.int 6

let wall_clock () = Sys.time ()

let bucket x = Hashtbl.hash x mod 16

let sneaky_serialize x = Marshal.to_string x []
