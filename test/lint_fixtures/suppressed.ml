(* Fixture: the same no-print violation as Bad_print, but allowed by
   a per-file suppression comment — the linter must stay quiet. *)

(* discfs-lint: allow no-print mli-coverage *)

let shout () = print_endline "permitted"
