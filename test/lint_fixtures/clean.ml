(* Fixture: rule-abiding code — dedicated comparisons, no ambient
   state, errors via result. The linter must report nothing here. *)

(* discfs-lint: allow mli-coverage *)

let nat_eq = Bignum.Nat.equal

let keys_eq = Dcrypto.Dsa.pub_equal

let decode_flag = function 0 -> Ok false | 1 -> Ok true | n -> Error n

let describe () = Printf.sprintf "%d" 42
