(* Fixture: intermediate encoders in what poses as a wire hot-path
   layer (checked under the decode role). Messages are built in the
   channel's message arena; every fresh encoder needs its own
   written-down reason. The file-level allow on the next line must
   NOT silence the rule — hotpath-alloc is per-site only. *)
(* discfs-lint: allow hotpath-alloc *)

module Enc = struct
  type t = Buffer.t

  let create () : t = Buffer.create 16
end

let bare_site () = Enc.create ()

let unjustified_site () =
  (* discfs-lint: allow hotpath-alloc *)
  Enc.create ()

let justified_site () =
  (* discfs-lint: allow hotpath-alloc "fixture: the reason, written down" *)
  Enc.create ()
