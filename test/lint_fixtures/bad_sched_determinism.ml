(* Fixture: unordered hash-table iteration in a module that opted
   into the scheduler-grade rule. Bucket order depends on insertion
   history, so deriving any event ordering from it would not replay.
   discfs-lint: require strict-determinism *)

let tbl : (int, string) Hashtbl.t = Hashtbl.create 8

let visit f = Hashtbl.iter f tbl

let total () = Hashtbl.fold (fun _ v acc -> acc + String.length v) tbl 0

let stream () = Hashtbl.to_seq tbl
