(* Races-pass seed: a shared ref escaping into two scheduled
   processes with no mediation — the canonical violation, twice. *)

module Clock = Simnet.Clock
module Sched = Simnet.Sched

let run () =
  let clock = Clock.create () in
  let s = Sched.create ~clock in
  Sched.attach_clock s;
  let counter = ref 0 in
  Sched.spawn s (fun () ->
      Sched.sleep s 1.0;
      counter := !counter + 1);
  ignore (Sched.spawn_after s 0.5 (fun () -> counter := !counter + 1));
  Sched.run s;
  !counter
