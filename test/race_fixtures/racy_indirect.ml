(* Races-pass seed: a record with a mutable field reaching the
   scheduler through one level of call indirection — the process body
   is a named local function, not a literal closure at the spawn
   site. *)

module Clock = Simnet.Clock
module Sched = Simnet.Sched

type cursor = { mutable pos : int }

let run () =
  let clock = Clock.create () in
  let s = Sched.create ~clock in
  Sched.attach_clock s;
  let c = { pos = 0 } in
  let body () =
    Sched.sleep s 1.0;
    c.pos <- c.pos + 1
  in
  Sched.spawn s body;
  Sched.run s;
  c.pos
