(* Races-pass seed: per-site suppression. The first spawn carries a
   justification string and is clean; the second carries the marker
   with no justification, which is itself a finding. *)

module Clock = Simnet.Clock
module Sched = Simnet.Sched

let run () =
  let clock = Clock.create () in
  let s = Sched.create ~clock in
  Sched.attach_clock s;
  let total = ref 0 in
  (* discfs-lint: allow races "only this process increments; the fixture reads the total after Sched.run returns" *)
  Sched.spawn s (fun () -> incr total);
  (* discfs-lint: allow races *)
  Sched.spawn s (fun () -> incr total);
  Sched.run s;
  !total
