(* Races-pass seed: the clean case. The only shared value crossing
   into the processes is a Sched.Mailbox.t — the blessed channel — so
   the inventory carries mailbox-mediated entries and no violation. *)

module Clock = Simnet.Clock
module Sched = Simnet.Sched

let run () =
  let clock = Clock.create () in
  let s = Sched.create ~clock in
  Sched.attach_clock s;
  let mb = Sched.Mailbox.create () in
  Sched.spawn s (fun () ->
      Sched.sleep s 1.0;
      Sched.Mailbox.push s mb 41);
  Sched.spawn s (fun () ->
      match Sched.Mailbox.take s mb ~timeout:5.0 with
      | Some v -> ignore (v + 1)
      | None -> ());
  Sched.run s
