(* KeyNote trust-management engine tests: language parsing, condition
   evaluation, assertion signing, and compliance checking over
   delegation graphs (the paper's Figure 1 scenario and beyond). *)

module Drbg = Dcrypto.Drbg
module Dsa = Dcrypto.Dsa
module Ast = Keynote.Ast
module Parser = Keynote.Parser
module Expr = Keynote.Expr
module Assertion = Keynote.Assertion
module Compliance = Keynote.Compliance
module Session = Keynote.Session

let octal_values = [ "false"; "X"; "W"; "WX"; "R"; "RX"; "RW"; "RWX" ]

(* Shared identities (parameter generation amortized via lazy). *)
let identities =
  lazy
    (let drbg = Drbg.create ~seed:"keynote-test-identities" in
     let admin = Dsa.generate_key drbg in
     let bob = Dsa.generate_key drbg in
     let alice = Dsa.generate_key drbg in
     let carol = Dsa.generate_key drbg in
     (admin, bob, alice, carol))

let key_str (k : Dsa.private_key) = Assertion.principal_of_pub k.Dsa.pub
let quoted k = Printf.sprintf "\"%s\"" (key_str k)
let drbg () = Drbg.create ~seed:"keynote-test-nonces"

(* --- Expression evaluation ---------------------------------------- *)

let env_of_list l name = List.assoc_opt name l

let eval_test_str env s =
  let prog = Parser.conditions s in
  let value_index v = match v with "false" -> Some 0 | "true" -> Some 1 | _ -> None in
  Expr.eval_program (env_of_list env) ~value_index ~max_index:1 prog = 1

let test_numeric_ops () =
  Alcotest.(check bool) "arith" true (eval_test_str [] "2 + 3 * 4 == 14");
  Alcotest.(check bool) "precedence" true (eval_test_str [] "(2 + 3) * 4 == 20");
  Alcotest.(check bool) "pow right assoc" true (eval_test_str [] "2 ^ 3 ^ 2 == 512");
  Alcotest.(check bool) "mod" true (eval_test_str [] "17 % 5 == 2");
  Alcotest.(check bool) "div" true (eval_test_str [] "10 / 4 == 2.5");
  Alcotest.(check bool) "unary minus" true (eval_test_str [] "-3 + 5 == 2");
  Alcotest.(check bool) "numeric compare" true (eval_test_str [] "9 < 10");
  Alcotest.(check bool) "numeric strings compare as numbers" true (eval_test_str [] "\"9\" < \"10\"");
  Alcotest.(check bool) "non-numeric strings compare lexicographically" true
    (eval_test_str [] "\"a10\" < \"a9\"")

let test_string_ops () =
  Alcotest.(check bool) "string eq" true (eval_test_str [] "\"abc\" == \"abc\"");
  Alcotest.(check bool) "string lt" true (eval_test_str [] "\"RW\" < \"RWX\"");
  Alcotest.(check bool) "concat" true (eval_test_str [] "\"foo\" . \"bar\" == \"foobar\"");
  Alcotest.(check bool) "numeric strings compare numerically" true
    (eval_test_str [] "\"0900\" == \"900\"")

let test_attributes () =
  let env = [ ("app_domain", "DisCFS"); ("HANDLE", "666240"); ("hour", "14") ] in
  Alcotest.(check bool) "attr eq" true (eval_test_str env "app_domain == \"DisCFS\"");
  Alcotest.(check bool) "attr numeric" true (eval_test_str env "hour >= 9 && hour <= 17");
  Alcotest.(check bool) "undefined attr is empty" true (eval_test_str env "missing == \"\"");
  Alcotest.(check bool) "paper figure 5" true
    (eval_test_str env "(app_domain == \"DisCFS\") && (HANDLE == \"666240\")");
  Alcotest.(check bool) "deref" true
    (eval_test_str (("which", "HANDLE") :: env) "$which == \"666240\"")

let test_regex_op () =
  let env = [ ("filename", "/discfs/docs/paper.tex") ] in
  Alcotest.(check bool) "regex match" true (eval_test_str env "filename ~= \"^/discfs/docs/\"");
  Alcotest.(check bool) "regex miss" false (eval_test_str env "filename ~= \"^/discfs/src/\"")

let test_eval_errors_unsatisfy () =
  (* Division by zero or non-numeric arithmetic must not grant. *)
  Alcotest.(check bool) "div by zero" false (eval_test_str [] "1 / 0 == 1");
  Alcotest.(check bool) "bad coercion" false (eval_test_str [] "\"abc\" + 1 == 1");
  Alcotest.(check bool) "error isolated per clause" true
    (eval_test_str [] "\"abc\" + 1 == 1 -> \"false\"; 1 == 1 -> \"true\"")

let test_program_max_semantics () =
  let prog = Parser.conditions
      "perm == \"r\" -> \"R\"; perm == \"rw\" -> \"RW\"; app == \"DisCFS\" -> \"X\";"
  in
  let value_index v =
    let rec idx i = function [] -> None | x :: r -> if x = v then Some i else idx (i + 1) r in
    idx 0 octal_values
  in
  let env = env_of_list [ ("perm", "rw"); ("app", "DisCFS") ] in
  (* Both the RW clause (6) and the X clause (1) fire: max wins. *)
  Alcotest.(check int) "max of satisfied" 6 (Expr.eval_program env ~value_index ~max_index:7 prog)

let test_nested_program () =
  let prog = Parser.conditions
      "app_domain == \"DisCFS\" -> { op == \"read\" -> \"R\"; op == \"write\" -> \"W\"; };"
  in
  let value_index v =
    let rec idx i = function [] -> None | x :: r -> if x = v then Some i else idx (i + 1) r in
    idx 0 octal_values
  in
  let check env expected =
    Expr.eval_program (env_of_list env) ~value_index ~max_index:7 prog = expected
  in
  Alcotest.(check bool) "read" true (check [ ("app_domain", "DisCFS"); ("op", "read") ] 4);
  Alcotest.(check bool) "write" true (check [ ("app_domain", "DisCFS"); ("op", "write") ] 2);
  Alcotest.(check bool) "wrong domain" true (check [ ("app_domain", "other"); ("op", "read") ] 0)

let test_special_attributes () =
  let admin, bob, _, _ = Lazy.force identities in
  let policy = [ Keynote.Assertion.policy ~licensees:(quoted admin) ~conditions:"true;" () ] in
  let check conditions attrs expected =
    let cred = Assertion.issue ~key:admin ~drbg:(drbg ()) ~licensees:(quoted bob) ~conditions () in
    let r =
      Compliance.check ~policy ~credentials:[ cred ]
        { Compliance.requesters = [ key_str bob ]; attributes = attrs; values = octal_values }
    in
    Alcotest.(check string) conditions expected r.Compliance.value
  in
  (* A clause with no explicit value means _MAX_TRUST (RFC 2704);
     _MIN_TRUST/_MAX_TRUST read as the endpoints of the value order. *)
  check "true;" [] "RWX";
  check "app == _MIN_TRUST -> \"R\";" [ ("app", "false") ] "R";
  check "app == _MAX_TRUST -> \"R\";" [ ("app", "RWX") ] "R";
  (* _VALUES lists the ordered set. *)
  check "_VALUES ~= \"RWX\" -> \"W\";" [] "W";
  (* _ACTION_AUTHORIZERS names the requesters. *)
  let cred =
    Assertion.issue ~key:admin ~drbg:(drbg ()) ~licensees:(quoted bob)
      ~conditions:(Printf.sprintf "_ACTION_AUTHORIZERS ~= \"%s\" -> \"X\";"
                     (String.sub (key_str bob) 0 20))
      ()
  in
  let r =
    Compliance.check ~policy ~credentials:[ cred ]
      { Compliance.requesters = [ key_str bob ]; attributes = []; values = octal_values }
  in
  Alcotest.(check string) "_ACTION_AUTHORIZERS" "X" r.Compliance.value

(* --- Licensees parsing --------------------------------------------- *)

let test_licensees_parse () =
  let l = Parser.licensees "\"k1\" && (\"k2\" || \"k3\")" in
  (match l with
  | Ast.And (Ast.Principal "k1", Ast.Or (Ast.Principal "k2", Ast.Principal "k3")) -> ()
  | _ -> Alcotest.fail "unexpected licensees structure");
  let t = Parser.licensees "2-of(\"a\", \"b\", \"c\")" in
  (match t with
  | Ast.Threshold (2, [ Ast.Principal "a"; Ast.Principal "b"; Ast.Principal "c" ]) -> ()
  | _ -> Alcotest.fail "unexpected threshold structure");
  (match Parser.licensees "POLICY" with
  | Ast.Principal "POLICY" -> ()
  | _ -> Alcotest.fail "identifier principal");
  Alcotest.check_raises "bad threshold k"
    (Parser.Parse_error "threshold K must be a positive integer") (fun () ->
      ignore (Parser.licensees "0-of(\"a\")"))

let test_licensees_resolve () =
  let resolve = function "BOB" -> "dsa-hex:bb" | other -> other in
  match Parser.licensees ~resolve "BOB || \"dsa-hex:aa\"" with
  | Ast.Or (Ast.Principal "dsa-hex:bb", Ast.Principal "dsa-hex:aa") -> ()
  | _ -> Alcotest.fail "local-constant resolution failed"

(* --- Assertions ----------------------------------------------------- *)

let test_assertion_parse_figure5 () =
  (* Shape of the paper's Figure 5 credential. *)
  let text =
    "KeyNote-Version: 2\n\
     Authorizer: \"dsa-hex:3081de0240503ca3\"\n\
     Licensees: \"dsa-hex:3081de02405be60a\"\n\
     Conditions: (app_domain == \"DisCFS\") &&\n\
     \t(HANDLE == \"666240\") -> \"RWX\";\n\
     Comment: testdir\n"
  in
  let a = Assertion.parse text in
  Alcotest.(check string) "authorizer" "dsa-hex:3081de0240503ca3" a.Assertion.authorizer;
  Alcotest.(check (option string)) "comment" (Some "testdir") a.Assertion.comment;
  (match a.Assertion.licensees with
  | Some (Ast.Principal "dsa-hex:3081de02405be60a") -> ()
  | _ -> Alcotest.fail "licensees");
  Alcotest.(check bool) "conditions parsed" true (a.Assertion.conditions <> None);
  Alcotest.(check bool) "unsigned doesn't verify" false (Assertion.verify a)

let test_assertion_sign_verify () =
  let admin, bob, _, _ = Lazy.force identities in
  let cred =
    Assertion.issue ~key:admin ~drbg:(drbg ()) ~comment:"testdir"
      ~licensees:(quoted bob)
      ~conditions:"(app_domain == \"DisCFS\") && (HANDLE == \"666240\") -> \"RWX\";" ()
  in
  Alcotest.(check bool) "verifies" true (Assertion.verify cred);
  Alcotest.(check bool) "signed_by admin" true (Assertion.signed_by cred admin.Dsa.pub);
  Alcotest.(check bool) "not signed_by bob" false (Assertion.signed_by cred bob.Dsa.pub);
  (* Roundtrip through text. *)
  let reparsed = Assertion.parse (Assertion.to_text cred) in
  Alcotest.(check bool) "reparse verifies" true (Assertion.verify reparsed);
  Alcotest.(check string) "stable fingerprint" (Assertion.fingerprint cred)
    (Assertion.fingerprint reparsed)

let test_sha256_signatures () =
  let admin, bob, _, _ = Lazy.force identities in
  let cred =
    Assertion.issue ~key:admin ~drbg:(drbg ()) ~alg:`Dsa_sha256 ~licensees:(quoted bob)
      ~conditions:"true -> \"R\";" ()
  in
  Alcotest.(check bool) "sha256 signature verifies" true (Assertion.verify cred);
  Alcotest.(check bool) "text says sha256" true
    (Rex.matches "sig-dsa-sha256-hex:" (Assertion.to_text cred));
  (* It drives a compliance check like any other credential. *)
  let r =
    Compliance.check
      ~policy:[ Assertion.policy ~licensees:(quoted admin) ~conditions:"true;" () ]
      ~credentials:[ cred ]
      { Compliance.requesters = [ key_str bob ]; attributes = []; values = octal_values }
  in
  Alcotest.(check string) "grants" "R" r.Compliance.value;
  (* Tampering is caught for the sha256 variant too. *)
  let bad = Assertion.parse (Str_replace.replace (Assertion.to_text cred) ~from:"\"R\"" ~into:"\"RWX\"") in
  Alcotest.(check bool) "tamper detected" false (Assertion.verify bad)

let test_assertion_tamper () =
  let admin, bob, _, _ = Lazy.force identities in
  let cred =
    Assertion.issue ~key:admin ~drbg:(drbg ()) ~licensees:(quoted bob)
      ~conditions:"HANDLE == \"42\" -> \"R\";" ()
  in
  (* Swap the handle in the credential text: signature must fail. *)
  let tampered_text =
    Str_replace.replace (Assertion.to_text cred) ~from:"\"42\"" ~into:"\"43\""
  in
  let tampered = Assertion.parse tampered_text in
  Alcotest.(check bool) "tampered fails" false (Assertion.verify tampered)

let test_assertion_parse_errors () =
  let expect_error text =
    match Assertion.parse text with
    | exception Assertion.Parse_error _ -> ()
    | _ -> Alcotest.failf "should not parse: %S" text
  in
  List.iter expect_error
    [
      "";
      "Licensees: \"k\"\n"; (* missing authorizer *)
      "Authorizer: \"a\" \"b\"\n"; (* two principals *)
      "not a field line\n";
      "Authorizer: \"a\"\nConditions: ((\n";
      "\tcontinuation first\n";
    ]

(* RFC 2704-shaped conformance set: the assertion-document grammar of
   §4 — field-name case-insensitivity, continuation-line folding,
   blank-line tolerance, Local-Constants substitution in Authorizer,
   empty optional fields, signature coverage, and exact diagnostics. *)
let test_rfc2704_conformance () =
  (* §4.1: field names are case-insensitive; unknown fields are carried
     without breaking the parse. *)
  let a =
    Assertion.parse
      "KEYNOTE-VERSION: 2\n\
       authorizer: \"dsa-hex:aa\"\n\
       LiCeNsEeS: \"dsa-hex:bb\"\n\
       conditions: true -> \"R\";\n"
  in
  Alcotest.(check (option string)) "version" (Some "2") a.Assertion.version;
  Alcotest.(check string) "authorizer" "dsa-hex:aa" a.Assertion.authorizer;
  (* §4.2: a field body continues over lines that begin with
     whitespace; blank lines between fields are ignored. *)
  let b =
    Assertion.parse
      "Authorizer: \"dsa-hex:aa\"\n\
       \n\
       Licensees: \"dsa-hex:bb\" ||\n\
       \t\"dsa-hex:cc\"\n\
       Conditions: (app_domain == \"DisCFS\") &&\n\
       \  (OPERATION == \"read\")\n\
       \  -> \"R\";\n\
       \n\
       Comment: spans\n\
       \ three physical lines\n"
  in
  (match b.Assertion.licensees with
  | Some (Ast.Or _) -> ()
  | _ -> Alcotest.fail "folded Licensees should parse as a disjunction");
  Alcotest.(check bool) "folded Conditions parse" true (b.Assertion.conditions <> None);
  (match b.Assertion.comment with
  | Some c -> Alcotest.(check bool) "comment folded" true (Rex.matches "three physical" c)
  | None -> Alcotest.fail "comment lost");
  (* §4.4: Local-Constants substitute into Authorizer and Licensees. *)
  let c =
    Assertion.parse
      "Local-Constants: ADMIN = \"dsa-hex:aa\" BOB = \"dsa-hex:bb\"\n\
       Authorizer: ADMIN\n\
       Licensees: BOB\n"
  in
  Alcotest.(check string) "constant in Authorizer" "dsa-hex:aa" c.Assertion.authorizer;
  (match c.Assertion.licensees with
  | Some (Ast.Principal "dsa-hex:bb") -> ()
  | _ -> Alcotest.fail "constant in Licensees");
  (* §4.3/§4.5: empty Licensees and Conditions mean "everyone" /
     "unconditional" — parsed as absent, not as errors. *)
  let d = Assertion.parse "Authorizer: \"dsa-hex:aa\"\nLicensees:\nConditions:   \n" in
  Alcotest.(check bool) "empty Licensees -> None" true (d.Assertion.licensees = None);
  Alcotest.(check bool) "empty Conditions -> None" true (d.Assertion.conditions = None);
  (* §4.6: the signature covers exactly the bytes before the Signature
     field, and its body must be a single quoted string. *)
  let body = "Authorizer: \"dsa-hex:aa\"\nConditions: true -> \"R\";\n" in
  let e = Assertion.parse (body ^ "Signature: \"sig-dsa-sha1-hex:00\"\n") in
  Alcotest.(check (option string)) "signature value" (Some "sig-dsa-sha1-hex:00")
    e.Assertion.signature;
  Alcotest.(check string) "signature covers preceding bytes" body e.Assertion.body_text;
  Alcotest.(check bool) "garbage signature doesn't verify" false (Assertion.verify e);
  (* Exact diagnostics for the malformed documents of §4. *)
  let expect_msg msg text =
    Alcotest.check_raises msg (Assertion.Parse_error msg) (fun () ->
        ignore (Assertion.parse text))
  in
  expect_msg "empty assertion" "";
  expect_msg "missing Authorizer field" "Licensees: \"dsa-hex:bb\"\n";
  expect_msg "continuation line before any field" "  Authorizer: \"dsa-hex:aa\"\n";
  expect_msg "Authorizer must be a single principal" "Authorizer: \"a\" && \"b\"\n";
  expect_msg "Signature must be a quoted string"
    "Authorizer: \"dsa-hex:aa\"\nSignature: unquoted\n";
  expect_msg "malformed Local-Constants field"
    "Local-Constants: A \"dsa-hex:aa\"\nAuthorizer: A\n"

let test_local_constants () =
  let admin, bob, _, _ = Lazy.force identities in
  let cred =
    Assertion.issue ~key:admin ~drbg:(drbg ())
      ~local_constants:[ ("BOB", key_str bob); ("LIMIT", "17") ]
      ~licensees:"BOB"
      ~conditions:"hour <= LIMIT -> \"R\";" ()
  in
  Alcotest.(check bool) "verifies" true (Assertion.verify cred);
  (match cred.Assertion.licensees with
  | Some (Ast.Principal p) ->
    Alcotest.(check bool) "constant resolved to key" true (Ast.principal_equal p (key_str bob))
  | _ -> Alcotest.fail "licensees");
  (* LIMIT must shadow any action attribute of the same name. *)
  let result =
    Compliance.check ~policy:[ Keynote.Assertion.policy ~licensees:(quoted admin) ~conditions:"true;" () ]
      ~credentials:[ cred ]
      {
        Compliance.requesters = [ key_str bob ];
        attributes = [ ("hour", "12"); ("LIMIT", "3") ];
        values = octal_values;
      }
  in
  Alcotest.(check string) "shadowing grants R" "R" result.Compliance.value

(* --- Compliance ----------------------------------------------------- *)

let policy_trusting key =
  Assertion.policy ~licensees:(Printf.sprintf "\"%s\"" (key_str key)) ~conditions:"true;" ()

let make_query ?(attrs = []) requesters =
  { Compliance.requesters = List.map key_str requesters; attributes = attrs; values = octal_values }

let test_direct_authorization () =
  let admin, bob, _, _ = Lazy.force identities in
  let result = Compliance.check ~policy:[ policy_trusting admin ] ~credentials:[] (make_query [ admin ]) in
  Alcotest.(check string) "admin is max" "RWX" result.Compliance.value;
  let result2 = Compliance.check ~policy:[ policy_trusting admin ] ~credentials:[] (make_query [ bob ]) in
  Alcotest.(check string) "stranger denied" "false" result2.Compliance.value

let test_delegation_chain_figure1 () =
  (* Figure 1: administrator -> Bob (RW) -> Alice (R). *)
  let admin, bob, alice, _ = Lazy.force identities in
  let attrs = [ ("app_domain", "DisCFS"); ("HANDLE", "666240") ] in
  let cred_bob =
    Assertion.issue ~key:admin ~drbg:(drbg ()) ~licensees:(quoted bob)
      ~conditions:"(app_domain == \"DisCFS\") && (HANDLE == \"666240\") -> \"RW\";" ()
  in
  let cred_alice =
    Assertion.issue ~key:bob ~drbg:(drbg ()) ~licensees:(quoted alice)
      ~conditions:"(app_domain == \"DisCFS\") && (HANDLE == \"666240\") -> \"R\";" ()
  in
  let policy = [ policy_trusting admin ] in
  (* Alice with both credentials: R. *)
  let r = Compliance.check ~policy ~credentials:[ cred_bob; cred_alice ] (make_query ~attrs [ alice ]) in
  Alcotest.(check string) "alice gets R" "R" r.Compliance.value;
  (* Alice without Bob's own credential: the chain is broken. *)
  let r2 = Compliance.check ~policy ~credentials:[ cred_alice ] (make_query ~attrs [ alice ]) in
  Alcotest.(check string) "broken chain denied" "false" r2.Compliance.value;
  (* Bob with his credential: RW. *)
  let r3 = Compliance.check ~policy ~credentials:[ cred_bob ] (make_query ~attrs [ bob ]) in
  Alcotest.(check string) "bob gets RW" "RW" r3.Compliance.value;
  (* Delegation cannot amplify: even if Bob grants Alice RWX, she is
     capped by Bob's own RW. *)
  let cred_alice_rwx =
    Assertion.issue ~key:bob ~drbg:(drbg ()) ~licensees:(quoted alice)
      ~conditions:"(app_domain == \"DisCFS\") && (HANDLE == \"666240\") -> \"RWX\";" ()
  in
  let r4 =
    Compliance.check ~policy ~credentials:[ cred_bob; cred_alice_rwx ] (make_query ~attrs [ alice ])
  in
  Alcotest.(check string) "no amplification" "RW" r4.Compliance.value;
  (* Wrong handle: denied. *)
  let r5 =
    Compliance.check ~policy ~credentials:[ cred_bob; cred_alice ]
      (make_query ~attrs:[ ("app_domain", "DisCFS"); ("HANDLE", "999") ] [ alice ])
  in
  Alcotest.(check string) "wrong handle denied" "false" r5.Compliance.value

let test_long_chain () =
  (* Chains of arbitrary length work (unlike the Exokernel's 8-level cap). *)
  let admin, _, _, _ = Lazy.force identities in
  let d = Drbg.create ~seed:"long-chain-keys" in
  let keys = Array.init 12 (fun _ -> Dsa.generate_key d) in
  let conditions = "app_domain == \"DisCFS\" -> \"R\";" in
  let creds = ref [] in
  let issuer = ref admin in
  Array.iter
    (fun k ->
      creds :=
        Assertion.issue ~key:!issuer ~drbg:(drbg ())
          ~licensees:(quoted k) ~conditions ()
        :: !creds;
      issuer := k)
    keys;
  let final = keys.(Array.length keys - 1) in
  let r =
    Compliance.check ~policy:[ policy_trusting admin ] ~credentials:!creds
      (make_query ~attrs:[ ("app_domain", "DisCFS") ] [ final ])
  in
  Alcotest.(check string) "12-link chain grants" "R" r.Compliance.value

let test_threshold () =
  let admin, bob, alice, carol = Lazy.force identities in
  let cred =
    Assertion.issue ~key:admin ~drbg:(drbg ())
      ~licensees:
        (Printf.sprintf "2-of(%s, %s, %s)" (quoted bob) (quoted alice) (quoted carol))
      ~conditions:"true -> \"RW\";" ()
  in
  let policy = [ policy_trusting admin ] in
  let r1 = Compliance.check ~policy ~credentials:[ cred ] (make_query [ bob; alice ]) in
  Alcotest.(check string) "two signers pass" "RW" r1.Compliance.value;
  let r2 = Compliance.check ~policy ~credentials:[ cred ] (make_query [ bob ]) in
  Alcotest.(check string) "one signer fails" "false" r2.Compliance.value

let test_conjunction_licensees () =
  let admin, bob, alice, _ = Lazy.force identities in
  let cred =
    Assertion.issue ~key:admin ~drbg:(drbg ())
      ~licensees:(Printf.sprintf "%s && %s" (quoted bob) (quoted alice))
      ~conditions:"true -> \"R\";" ()
  in
  let policy = [ policy_trusting admin ] in
  let r1 = Compliance.check ~policy ~credentials:[ cred ] (make_query [ bob; alice ]) in
  Alcotest.(check string) "both present" "R" r1.Compliance.value;
  let r2 = Compliance.check ~policy ~credentials:[ cred ] (make_query [ alice ]) in
  Alcotest.(check string) "one missing" "false" r2.Compliance.value

let test_forged_credential_ignored () =
  let admin, bob, alice, _ = Lazy.force identities in
  (* Bob forges a credential claiming to be from admin by taking a
     real admin credential for himself and editing the licensee. *)
  let real =
    Assertion.issue ~key:admin ~drbg:(drbg ()) ~licensees:(quoted bob)
      ~conditions:"true -> \"RWX\";" ()
  in
  let forged_text =
    Str_replace.replace (Assertion.to_text real)
      ~from:(key_str bob) ~into:(key_str alice)
  in
  let forged = Assertion.parse forged_text in
  let r =
    Compliance.check ~policy:[ policy_trusting admin ] ~credentials:[ forged ]
      (make_query [ alice ])
  in
  Alcotest.(check string) "forged denied" "false" r.Compliance.value;
  Alcotest.(check bool) "trace mentions discard" true
    (List.exists (fun line -> String.length line > 0 && String.sub line 0 9 = "discarded")
       r.Compliance.trace)

let test_delegation_cycle () =
  let admin, bob, alice, _ = Lazy.force identities in
  (* bob delegates to alice, alice delegates back to bob; neither is
     connected to POLICY. The checker must terminate and deny. *)
  let c1 =
    Assertion.issue ~key:bob ~drbg:(drbg ()) ~licensees:(quoted alice) ~conditions:"true;" ()
  in
  let c2 =
    Assertion.issue ~key:alice ~drbg:(drbg ()) ~licensees:(quoted bob) ~conditions:"true;" ()
  in
  let r =
    Compliance.check ~policy:[ policy_trusting admin ] ~credentials:[ c1; c2 ]
      (make_query [])
  in
  Alcotest.(check string) "cycle denied" "false" r.Compliance.value

let test_time_of_day_policy () =
  (* Paper section 3.1: leisure files unavailable during office hours. *)
  let admin, bob, _, _ = Lazy.force identities in
  let cred =
    Assertion.issue ~key:admin ~drbg:(drbg ()) ~licensees:(quoted bob)
      ~conditions:"(hour < 9 || hour >= 17) && filetype == \"leisure\" -> \"R\";" ()
  in
  let policy = [ policy_trusting admin ] in
  let query hour =
    make_query ~attrs:[ ("hour", string_of_int hour); ("filetype", "leisure") ] [ bob ]
  in
  let at h = (Compliance.check ~policy ~credentials:[ cred ] (query h)).Compliance.value in
  Alcotest.(check string) "evening ok" "R" (at 20);
  Alcotest.(check string) "early ok" "R" (at 7);
  Alcotest.(check string) "office hours denied" "false" (at 11)

let test_empty_licensees_grants_nothing () =
  let admin, bob, _, _ = Lazy.force identities in
  let a = Assertion.policy ~licensees:(quoted admin) ~conditions:"" () in
  let r =
    Compliance.check ~policy:[ a ] ~credentials:[] (make_query [ bob ])
  in
  Alcotest.(check string) "no grant" "false" r.Compliance.value

(* --- Session -------------------------------------------------------- *)

let test_session () =
  let admin, bob, alice, _ = Lazy.force identities in
  let session = Session.create ~values:octal_values () in
  Session.add_policy session (policy_trusting admin);
  let cred_bob =
    Assertion.issue ~key:admin ~drbg:(drbg ()) ~licensees:(quoted bob)
      ~conditions:"app_domain == \"DisCFS\" -> \"RW\";" ()
  in
  (match Session.add_credential session cred_bob with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* Submitting text over RPC is how the DisCFS utility works. *)
  let cred_alice =
    Assertion.issue ~key:bob ~drbg:(drbg ()) ~licensees:(quoted alice)
      ~conditions:"app_domain == \"DisCFS\" -> \"R\";" ()
  in
  (match Session.add_credential_text session (Assertion.to_text cred_alice) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "two credentials" 2 (List.length (Session.credentials session));
  let attributes = [ ("app_domain", "DisCFS") ] in
  let r = Session.query session ~requesters:[ key_str alice ] ~attributes in
  Alcotest.(check string) "alice R" "R" r.Compliance.value;
  (* Idempotent re-add. *)
  (match Session.add_credential session cred_bob with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check int) "still two" 2 (List.length (Session.credentials session));
  (* Revocation: removing Bob's credential breaks Alice's chain. *)
  Alcotest.(check bool) "removed" true
    (Session.remove_credential session ~fingerprint:(Assertion.fingerprint cred_bob));
  let r2 = Session.query session ~requesters:[ key_str alice ] ~attributes in
  Alcotest.(check string) "revoked" "false" r2.Compliance.value;
  (* Garbage text rejected. *)
  (match Session.add_credential_text session "garbage" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "garbage accepted")

let prop_chain_value_is_min =
  (* For a linear chain, the granted value is the minimum along the
     chain (delegation can restrict, never amplify). *)
  let admin, bob, alice, _ = Lazy.force identities in
  QCheck.Test.make ~name:"chain value = min of links" ~count:20
    (QCheck.make QCheck.Gen.(pair (int_bound 7) (int_bound 7)))
    (fun (v1, v2) ->
      let value_at i = List.nth octal_values i in
      let cred1 =
        Assertion.issue ~key:admin ~drbg:(drbg ()) ~licensees:(quoted bob)
          ~conditions:(Printf.sprintf "true -> \"%s\";" (value_at v1)) ()
      in
      let cred2 =
        Assertion.issue ~key:bob ~drbg:(drbg ()) ~licensees:(quoted alice)
          ~conditions:(Printf.sprintf "true -> \"%s\";" (value_at v2)) ()
      in
      let r =
        Compliance.check ~policy:[ policy_trusting admin ] ~credentials:[ cred1; cred2 ]
          (make_query [ alice ])
      in
      r.Compliance.level = min v1 v2)

let suite =
  [
    Alcotest.test_case "numeric operators" `Quick test_numeric_ops;
    Alcotest.test_case "string operators" `Quick test_string_ops;
    Alcotest.test_case "action attributes" `Quick test_attributes;
    Alcotest.test_case "regex operator" `Quick test_regex_op;
    Alcotest.test_case "evaluation errors unsatisfy clause" `Quick test_eval_errors_unsatisfy;
    Alcotest.test_case "program max semantics" `Quick test_program_max_semantics;
    Alcotest.test_case "nested programs" `Quick test_nested_program;
    Alcotest.test_case "special attributes" `Quick test_special_attributes;
    Alcotest.test_case "licensees parsing" `Quick test_licensees_parse;
    Alcotest.test_case "licensees local constants" `Quick test_licensees_resolve;
    Alcotest.test_case "parse figure 5 shape" `Quick test_assertion_parse_figure5;
    Alcotest.test_case "sign and verify" `Quick test_assertion_sign_verify;
    Alcotest.test_case "sha256 signature variant" `Quick test_sha256_signatures;
    Alcotest.test_case "tampered assertion" `Quick test_assertion_tamper;
    Alcotest.test_case "parse errors" `Quick test_assertion_parse_errors;
    Alcotest.test_case "rfc 2704 conformance" `Quick test_rfc2704_conformance;
    Alcotest.test_case "local constants" `Quick test_local_constants;
    Alcotest.test_case "direct authorization" `Quick test_direct_authorization;
    Alcotest.test_case "figure-1 delegation chain" `Quick test_delegation_chain_figure1;
    Alcotest.test_case "12-link chain" `Slow test_long_chain;
    Alcotest.test_case "threshold licensees" `Quick test_threshold;
    Alcotest.test_case "conjunction licensees" `Quick test_conjunction_licensees;
    Alcotest.test_case "forged credential ignored" `Quick test_forged_credential_ignored;
    Alcotest.test_case "delegation cycle terminates" `Quick test_delegation_cycle;
    Alcotest.test_case "time-of-day policy" `Quick test_time_of_day_policy;
    Alcotest.test_case "empty licensees" `Quick test_empty_licensees_grants_nothing;
    Alcotest.test_case "persistent session" `Quick test_session;
    QCheck_alcotest.to_alcotest prop_chain_value_is_min;
  ]
