(* XDR codec and ONC RPC call/dispatch over the simulated link. *)

module Clock = Simnet.Clock
module Stats = Simnet.Stats
module Link = Simnet.Link
module Rpc = Oncrpc.Rpc

let test_xdr_ints () =
  let e = Xdr.Enc.create () in
  Xdr.Enc.uint32 e 0;
  Xdr.Enc.uint32 e 0xdeadbeef;
  Xdr.Enc.int32 e (-1);
  Xdr.Enc.int32 e 0x7fffffff;
  Xdr.Enc.uint64 e 0x1122334455667788L;
  let d = Xdr.Dec.of_string (Xdr.Enc.to_string e) in
  Alcotest.(check int) "zero" 0 (Xdr.Dec.uint32 d);
  Alcotest.(check int) "large u32" 0xdeadbeef (Xdr.Dec.uint32 d);
  Alcotest.(check int) "minus one" (-1) (Xdr.Dec.int32 d);
  Alcotest.(check int) "int32 max" 0x7fffffff (Xdr.Dec.int32 d);
  Alcotest.(check int64) "u64" 0x1122334455667788L (Xdr.Dec.uint64 d);
  Xdr.Dec.expect_end d;
  Alcotest.check_raises "u32 range" (Invalid_argument "Xdr.Enc.uint32: out of range")
    (fun () -> Xdr.Enc.uint32 (Xdr.Enc.create ()) (-1))

let test_xdr_opaque_padding () =
  let e = Xdr.Enc.create () in
  Xdr.Enc.opaque e "abcde";
  (* 4 length + 5 data + 3 pad *)
  Alcotest.(check int) "padded length" 12 (String.length (Xdr.Enc.to_string e));
  let d = Xdr.Dec.of_string (Xdr.Enc.to_string e) in
  Alcotest.(check string) "roundtrip" "abcde" (Xdr.Dec.opaque d);
  Xdr.Dec.expect_end d

let test_xdr_truncation () =
  let d = Xdr.Dec.of_string "\000\000" in
  Alcotest.check_raises "truncated" (Xdr.Decode_error "truncated XDR data") (fun () ->
      ignore (Xdr.Dec.uint32 d));
  let e = Xdr.Enc.create () in
  Xdr.Enc.uint32 e 100;
  let d = Xdr.Dec.of_string (Xdr.Enc.to_string e) in
  Alcotest.check_raises "opaque longer than data" (Xdr.Decode_error "truncated XDR data")
    (fun () -> ignore (Xdr.Dec.opaque d))

let prop_xdr_roundtrip =
  QCheck.Test.make ~name:"xdr mixed roundtrip" ~count:200
    (QCheck.make QCheck.Gen.(triple (int_bound 0xffffffff) small_string bool))
    (fun (n, s, b) ->
      let e = Xdr.Enc.create () in
      Xdr.Enc.uint32 e n;
      Xdr.Enc.string e s;
      Xdr.Enc.bool e b;
      let d = Xdr.Dec.of_string (Xdr.Enc.to_string e) in
      let n' = Xdr.Dec.uint32 d in
      let s' = Xdr.Dec.string d in
      let b' = Xdr.Dec.bool d in
      Xdr.Dec.expect_end d;
      n = n' && s = s' && b = b')

(* An echo/add test service. *)
let make_service () =
  let clock = Clock.create () in
  let stats = Stats.create () in
  let link = Link.create ~clock ~cost:Simnet.Cost.default ~stats in
  let srv = Rpc.server ~clock ~cost:Simnet.Cost.default ~stats in
  Rpc.register srv ~prog:77 ~vers:1 (fun ~conn ~proc ~args ->
      match proc with
      | 0 -> Ok ""
      | 1 -> Ok args (* echo *)
      | 2 ->
        let d = Xdr.Dec.of_string args in
        let a = Xdr.Dec.uint32 d in
        let b = Xdr.Dec.uint32 d in
        let e = Xdr.Enc.create () in
        Xdr.Enc.uint32 e (a + b);
        Ok (Xdr.Enc.to_string e)
      | 3 ->
        let e = Xdr.Enc.create () in
        Xdr.Enc.string e (Printf.sprintf "peer=%s uid=%d" conn.Rpc.peer conn.Rpc.uid);
        Ok (Xdr.Enc.to_string e)
      | _ -> Error Rpc.Proc_unavail);
  (clock, stats, link, srv)

let test_rpc_echo () =
  let _, _, link, srv = make_service () in
  let client = Rpc.connect ~link srv in
  Alcotest.(check string) "null" "" (Rpc.call client ~prog:77 ~vers:1 ~proc:0 "");
  Alcotest.(check string) "echo" "payload!" (Rpc.call client ~prog:77 ~vers:1 ~proc:1 "payload!");
  let e = Xdr.Enc.create () in
  Xdr.Enc.uint32 e 20;
  Xdr.Enc.uint32 e 22;
  let reply = Rpc.call client ~prog:77 ~vers:1 ~proc:2 (Xdr.Enc.to_string e) in
  Alcotest.(check int) "add" 42 (Xdr.Dec.uint32 (Xdr.Dec.of_string reply));
  Alcotest.(check int) "calls counted" 3 (Rpc.calls_made srv)

let test_rpc_faults () =
  let _, _, link, srv = make_service () in
  let client = Rpc.connect ~link srv in
  Alcotest.check_raises "bad prog" (Rpc.Rpc_error Rpc.Prog_unavail) (fun () ->
      ignore (Rpc.call client ~prog:99 ~vers:1 ~proc:0 ""));
  Alcotest.check_raises "bad vers" (Rpc.Rpc_error Rpc.Prog_unavail) (fun () ->
      ignore (Rpc.call client ~prog:77 ~vers:9 ~proc:0 ""));
  Alcotest.check_raises "bad proc" (Rpc.Rpc_error Rpc.Proc_unavail) (fun () ->
      ignore (Rpc.call client ~prog:77 ~vers:1 ~proc:42 ""));
  (* Handler decode errors surface as Garbage_args. *)
  Alcotest.check_raises "garbage args" (Rpc.Rpc_error Rpc.Garbage_args) (fun () ->
      ignore (Rpc.call client ~prog:77 ~vers:1 ~proc:2 "\001"))

let test_rpc_conn_info () =
  let _, _, link, srv = make_service () in
  let client = Rpc.connect ~link ~peer:"dsa-hex:abcd" ~uid:1042 srv in
  let reply = Rpc.call client ~prog:77 ~vers:1 ~proc:3 "" in
  Alcotest.(check string) "conn info" "peer=dsa-hex:abcd uid=1042"
    (Xdr.Dec.string (Xdr.Dec.of_string reply))

let test_rpc_charges_time () =
  let clock, _, link, srv = make_service () in
  let client = Rpc.connect ~link srv in
  let before = Clock.now clock in
  ignore (Rpc.call client ~prog:77 ~vers:1 ~proc:1 (String.make 8192 'x'));
  let dt = Clock.now clock -. before in
  (* Two 8K+ messages over 12.5 MB/s plus RPC overhead: >1.3 ms. *)
  Alcotest.(check bool) "realistic latency" true (dt > 0.0013 && dt < 0.01)

(* --- IPsec --------------------------------------------------------- *)

let handshake () =
  let clock = Clock.create () in
  let stats = Stats.create () in
  let link = Link.create ~clock ~cost:Simnet.Cost.default ~stats in
  let drbg = Dcrypto.Drbg.create ~seed:"ipsec-test" in
  let initiator = Dcrypto.Dsa.generate_key drbg in
  let responder = Dcrypto.Dsa.generate_key drbg in
  (clock, stats, link, drbg, initiator, responder)

let test_ike_establish () =
  let clock, _, link, drbg, initiator, responder = handshake () in
  let before = Clock.now clock in
  let client_ep, server_ep = Ipsec.Ike.establish ~link ~drbg ~initiator ~responder () in
  Alcotest.(check string) "server sees initiator key"
    (Keynote.Assertion.principal_of_pub initiator.Dcrypto.Dsa.pub)
    server_ep.Ipsec.Ike.peer;
  Alcotest.(check string) "client sees responder key"
    (Keynote.Assertion.principal_of_pub responder.Dcrypto.Dsa.pub)
    client_ep.Ipsec.Ike.peer;
  Alcotest.(check bool) "handshake costs time" true (Clock.now clock -. before > 0.1)

let test_esp_roundtrip () =
  let _, _, link, drbg, initiator, responder = handshake () in
  let client_ep, server_ep = Ipsec.Ike.establish ~link ~drbg ~initiator ~responder () in
  let payload = "GETATTR please" in
  let packet = Ipsec.Esp.seal client_ep.Ipsec.Ike.tx payload in
  Alcotest.(check bool) "bigger on the wire" true
    (String.length packet = String.length payload + Ipsec.Esp.overhead);
  Alcotest.(check string) "opens" payload (Ipsec.Esp.open_ server_ep.Ipsec.Ike.rx packet);
  (* Replay is rejected. *)
  (match Ipsec.Esp.open_ server_ep.Ipsec.Ike.rx packet with
  | exception Ipsec.Esp.Esp_error _ -> ()
  | _ -> Alcotest.fail "replay accepted");
  (* Tampered ciphertext is rejected. *)
  let packet2 = Ipsec.Esp.seal client_ep.Ipsec.Ike.tx payload in
  let tampered = Bytes.of_string packet2 in
  Bytes.set tampered 14 (Char.chr (Char.code (Bytes.get tampered 14) lxor 1));
  (match Ipsec.Esp.open_ server_ep.Ipsec.Ike.rx (Bytes.to_string tampered) with
  | exception Ipsec.Esp.Esp_error _ -> ()
  | _ -> Alcotest.fail "tampered packet accepted")

let test_esp_out_of_order () =
  let _, _, link, drbg, initiator, responder = handshake () in
  let client_ep, server_ep = Ipsec.Ike.establish ~link ~drbg ~initiator ~responder () in
  let p1 = Ipsec.Esp.seal client_ep.Ipsec.Ike.tx "one" in
  let p2 = Ipsec.Esp.seal client_ep.Ipsec.Ike.tx "two" in
  let p3 = Ipsec.Esp.seal client_ep.Ipsec.Ike.tx "three" in
  (* Delivery order 3,1,2 is fine within the replay window. *)
  Alcotest.(check string) "p3" "three" (Ipsec.Esp.open_ server_ep.Ipsec.Ike.rx p3);
  Alcotest.(check string) "p1" "one" (Ipsec.Esp.open_ server_ep.Ipsec.Ike.rx p1);
  Alcotest.(check string) "p2" "two" (Ipsec.Esp.open_ server_ep.Ipsec.Ike.rx p2)

let test_ike_mitm_detected () =
  let _, _, link, drbg, initiator, responder = handshake () in
  let flip s i =
    let b = Bytes.of_string s in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
    Bytes.to_string b
  in
  (* Tamper with the responder's signature message. *)
  (match
     Ipsec.Ike.establish ~link ~drbg ~initiator ~responder
       ~mitm:(fun ~msg s -> if msg = 2 then flip s (String.length s - 6) else s)
       ()
   with
  | exception Ipsec.Ike.Ike_failure _ -> ()
  | _ -> Alcotest.fail "responder tampering undetected");
  (* Tamper with the initiator's authentication. *)
  (match
     Ipsec.Ike.establish ~link ~drbg ~initiator ~responder
       ~mitm:(fun ~msg s -> if msg = 3 then flip s (String.length s - 6) else s)
       ()
   with
  | exception Ipsec.Ike.Ike_failure _ -> ()
  | _ -> Alcotest.fail "initiator tampering undetected")

let test_rpc_over_esp () =
  let clock, stats, link, drbg, initiator, responder = handshake () in
  let srv = Rpc.server ~clock ~cost:Simnet.Cost.default ~stats in
  Rpc.register srv ~prog:5 ~vers:1 (fun ~conn ~proc:_ ~args:_ ->
      let e = Xdr.Enc.create () in
      Xdr.Enc.string e conn.Rpc.peer;
      Ok (Xdr.Enc.to_string e));
  let client_ep, server_ep = Ipsec.Ike.establish ~link ~drbg ~initiator ~responder () in
  let channel = Ipsec.Ike.rpc_channel ~client:client_ep ~server:server_ep in
  let client = Rpc.connect ~link ~channel ~peer:server_ep.Ipsec.Ike.peer srv in
  let reply = Rpc.call client ~prog:5 ~vers:1 ~proc:0 "" in
  Alcotest.(check string) "server handler sees authenticated key"
    (Keynote.Assertion.principal_of_pub initiator.Dcrypto.Dsa.pub)
    (Xdr.Dec.string (Xdr.Dec.of_string reply));
  Alcotest.(check bool) "esp packets counted" true (Stats.get stats "esp.packets" >= 2)

let test_esp_tdes_transform () =
  (* The period-accurate 3DES-HMAC-SHA1 transform interoperates with
     the rest of the stack and costs more virtual time per byte. *)
  let clock, _, link, drbg, initiator, responder = handshake () in
  let client_ep, server_ep =
    Ipsec.Ike.establish ~link ~drbg ~initiator ~responder ~cipher:Ipsec.Sa.Tdes_hmac_sha1 ()
  in
  let payload = String.make 8192 'd' in
  let t0 = Clock.now clock in
  let packet = Ipsec.Esp.seal client_ep.Ipsec.Ike.tx payload in
  let tdes_time = Clock.now clock -. t0 in
  Alcotest.(check string) "opens" payload (Ipsec.Esp.open_ server_ep.Ipsec.Ike.rx packet);
  (* Replay and tampering still rejected. *)
  (match Ipsec.Esp.open_ server_ep.Ipsec.Ike.rx packet with
  | exception Ipsec.Esp.Esp_error _ -> ()
  | _ -> Alcotest.fail "replay accepted");
  let p2 = Bytes.of_string (Ipsec.Esp.seal client_ep.Ipsec.Ike.tx payload) in
  Bytes.set p2 20 (Char.chr (Char.code (Bytes.get p2 20) lxor 1));
  (match Ipsec.Esp.open_ server_ep.Ipsec.Ike.rx (Bytes.to_string p2) with
  | exception Ipsec.Esp.Esp_error _ -> ()
  | _ -> Alcotest.fail "tampered 3des packet accepted");
  (* Compare virtual cost against the fast transform. *)
  let c2, _, link2, drbg2, i2, r2 = handshake () in
  let fast_ep, _ = Ipsec.Ike.establish ~link:link2 ~drbg:drbg2 ~initiator:i2 ~responder:r2 () in
  let t0 = Clock.now c2 in
  ignore (Ipsec.Esp.seal fast_ep.Ipsec.Ike.tx payload);
  let fast_time = Clock.now c2 -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "3des much slower (%.2f ms vs %.3f ms)" (tdes_time *. 1000.)
       (fast_time *. 1000.))
    true
    (tdes_time > 10.0 *. fast_time)

let test_replay_window_unit () =
  let clock = Clock.create () in
  let stats = Stats.create () in
  let sa =
    Ipsec.Sa.create ~clock ~cost:Simnet.Cost.default ~stats ~spi:7 ~key:(String.make 32 'k') ()
  in
  Alcotest.(check bool) "fresh 5" true (Ipsec.Sa.replay_check sa 5);
  Alcotest.(check bool) "replay 5" false (Ipsec.Sa.replay_check sa 5);
  Alcotest.(check bool) "old 3 ok once" true (Ipsec.Sa.replay_check sa 3);
  Alcotest.(check bool) "replay 3" false (Ipsec.Sa.replay_check sa 3);
  Alcotest.(check bool) "advance 100" true (Ipsec.Sa.replay_check sa 100);
  Alcotest.(check bool) "too old 5" false (Ipsec.Sa.replay_check sa 5);
  Alcotest.(check bool) "recent 90" true (Ipsec.Sa.replay_check sa 90);
  Alcotest.(check bool) "zero invalid" false (Ipsec.Sa.replay_check sa 0)

(* --- xid allocation (regression) -------------------------------------- *)

let test_xid_bands_disjoint () =
  (* The old allocator gave client [c] the xids [c * 1_000_000 + seq]:
     client 1's call 1_500_000 and client 2's call 500_000 shared xid
     2_500_000, so with matching (peer, proc) their DRC entries
     aliased and one client could be answered from the other's cached
     reply. The banded layout keeps clients in disjoint xid ranges
     forever. *)
  let old_xid client seq = (client * 1_000_000) + seq in
  Alcotest.(check int) "old scheme collides across clients"
    (old_xid 1 1_500_000) (old_xid 2 500_000);
  Alcotest.(check bool) "banded scheme does not" true
    (Rpc.make_xid ~client_id:1 ~seq:1_500_000 <> Rpc.make_xid ~client_id:2 ~seq:500_000);
  (* A client's sequence wraps inside its own 20-bit band instead of
     marching into the neighbour's range. *)
  Alcotest.(check int) "seq wraps in-band"
    (Rpc.make_xid ~client_id:3 ~seq:0)
    (Rpc.make_xid ~client_id:3 ~seq:(1 lsl 20));
  Alcotest.(check bool) "xid fits uint32" true
    (Rpc.make_xid ~client_id:4095 ~seq:((1 lsl 20) - 1) < 1 lsl 32)

let prop_xid_bands_disjoint =
  QCheck.Test.make ~name:"xids from distinct clients never collide" ~count:500
    (QCheck.make
       ~print:(fun (c1, c2, s1, s2) -> Printf.sprintf "c%d/%d c%d/%d" c1 s1 c2 s2)
       QCheck.Gen.(
         quad (int_range 0 4095) (int_range 0 4095) (int_range 0 10_000_000)
           (int_range 0 10_000_000)))
    (fun (c1, c2, s1, s2) ->
      let x1 = Rpc.make_xid ~client_id:c1 ~seq:s1
      and x2 = Rpc.make_xid ~client_id:c2 ~seq:s2 in
      x1 >= 0 && x1 < 1 lsl 32 && (c1 = c2 || x1 <> x2))

let suite =
  [
    Alcotest.test_case "xdr integers" `Quick test_xdr_ints;
    Alcotest.test_case "xdr opaque padding" `Quick test_xdr_opaque_padding;
    Alcotest.test_case "xdr truncation" `Quick test_xdr_truncation;
    QCheck_alcotest.to_alcotest prop_xdr_roundtrip;
    Alcotest.test_case "rpc echo service" `Quick test_rpc_echo;
    Alcotest.test_case "rpc faults" `Quick test_rpc_faults;
    Alcotest.test_case "rpc connection info" `Quick test_rpc_conn_info;
    Alcotest.test_case "rpc charges virtual time" `Quick test_rpc_charges_time;
    Alcotest.test_case "ike establishes authenticated SAs" `Quick test_ike_establish;
    Alcotest.test_case "esp seal/open/replay/tamper" `Quick test_esp_roundtrip;
    Alcotest.test_case "esp out-of-order within window" `Quick test_esp_out_of_order;
    Alcotest.test_case "ike detects tampering" `Quick test_ike_mitm_detected;
    Alcotest.test_case "rpc over esp channel" `Quick test_rpc_over_esp;
    Alcotest.test_case "esp 3des transform" `Quick test_esp_tdes_transform;
    Alcotest.test_case "replay window" `Quick test_replay_window_unit;
    Alcotest.test_case "xid bands are disjoint" `Quick test_xid_bands_disjoint;
    QCheck_alcotest.to_alcotest prop_xid_bands_disjoint;
  ]
