(* Crypto substrate tests: published test vectors (FIPS 180, RFC 2202,
   RFC 4231, RFC 8439) plus roundtrip properties for DSA/DH/DRBG. *)

module Hexcodec = Dcrypto.Hexcodec
module Sha1 = Dcrypto.Sha1
module Sha256 = Dcrypto.Sha256
module Hmac = Dcrypto.Hmac
module Chacha20 = Dcrypto.Chacha20
module Poly1305 = Dcrypto.Poly1305
module Drbg = Dcrypto.Drbg
module Dsa = Dcrypto.Dsa
module Dh = Dcrypto.Dh

let check_hex name expected got = Alcotest.(check string) name expected (Hexcodec.encode got)

let test_hexcodec () =
  Alcotest.(check string) "encode" "deadbeef" (Hexcodec.encode "\xde\xad\xbe\xef");
  Alcotest.(check string) "decode" "\xde\xad\xbe\xef" (Hexcodec.decode "DeadBeef");
  Alcotest.(check string) "empty" "" (Hexcodec.encode "");
  Alcotest.check_raises "odd" (Invalid_argument "Hexcodec.decode: odd length") (fun () ->
      ignore (Hexcodec.decode "abc"))

let test_sha1_vectors () =
  check_hex "empty" "da39a3ee5e6b4b0d3255bfef95601890afd80709" (Sha1.digest "");
  check_hex "abc" "a9993e364706816aba3e25717850c26c9cd0d89d" (Sha1.digest "abc");
  check_hex "two-block" "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
    (Sha1.digest "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  check_hex "448-bit boundary" "c1c8bbdc22796e28c0e15163d20899b65621d65a"
    (Sha1.digest (String.make 55 'a'));
  check_hex "512-bit boundary" "0098ba824b5c16427bd7a1122a5a442a25ec644d"
    (Sha1.digest (String.make 64 'a'))

let test_sha1_million () =
  check_hex "million a" "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
    (Sha1.digest (String.make 1_000_000 'a'))

let test_sha1_incremental () =
  let whole = Sha1.digest "the quick brown fox jumps over the lazy dog" in
  let ctx = Sha1.init () in
  List.iter (Sha1.update ctx) [ "the quick "; "brown fox jumps"; ""; " over the lazy dog" ];
  Alcotest.(check string) "chunked = whole" (Hexcodec.encode whole)
    (Hexcodec.encode (Sha1.finalize ctx))

let test_sha256_vectors () =
  check_hex "empty" "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (Sha256.digest "");
  check_hex "abc" "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Sha256.digest "abc");
  check_hex "two-block" "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (Sha256.digest "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")

let test_sha256_incremental () =
  let msg = String.init 1000 (fun i -> Char.chr (i mod 251)) in
  let ctx = Sha256.init () in
  String.iter (fun c -> Sha256.update ctx (String.make 1 c)) msg;
  Alcotest.(check string) "byte-at-a-time" (Sha256.hex msg) (Hexcodec.encode (Sha256.finalize ctx))

let test_hmac_vectors () =
  (* RFC 2202 case 1 / RFC 4231 case 1 *)
  let key = String.make 20 '\x0b' in
  check_hex "hmac-sha1 rfc2202-1" "b617318655057264e28bc0b6fb378c8ef146be00"
    (Hmac.sha1 ~key "Hi There");
  check_hex "hmac-sha256 rfc4231-1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (Hmac.sha256 ~key "Hi There");
  (* RFC 2202 case 2: short key *)
  check_hex "hmac-sha1 rfc2202-2" "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"
    (Hmac.sha1 ~key:"Jefe" "what do ya want for nothing?");
  (* RFC 4231 case 6: key longer than block size *)
  let long_key = String.make 131 '\xaa' in
  check_hex "hmac-sha256 rfc4231-6"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    (Hmac.sha256 ~key:long_key "Test Using Larger Than Block-Size Key - Hash Key First")

let test_hmac_kat_full () =
  (* The complete remaining RFC 2202 (HMAC-SHA1) and RFC 4231
     (HMAC-SHA256) known-answer sets: combined-key cases, truncation
     inputs, and the long-key/long-data cases. *)
  let k_aa20 = String.make 20 '\xaa' in
  let d_dd50 = String.make 50 '\xdd' in
  check_hex "hmac-sha1 rfc2202-3" "125d7342b9ac11cd91a39af48aa17b4f63f175d3"
    (Hmac.sha1 ~key:k_aa20 d_dd50);
  check_hex "hmac-sha256 rfc4231-2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Hmac.sha256 ~key:"Jefe" "what do ya want for nothing?");
  check_hex "hmac-sha256 rfc4231-3"
    "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
    (Hmac.sha256 ~key:k_aa20 d_dd50);
  let k_incr = String.init 25 (fun i -> Char.chr (i + 1)) in
  let d_cd50 = String.make 50 '\xcd' in
  check_hex "hmac-sha1 rfc2202-4" "4c9007f4026250c6bc8414f9bf50c86c2d7235da"
    (Hmac.sha1 ~key:k_incr d_cd50);
  check_hex "hmac-sha256 rfc4231-4"
    "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b"
    (Hmac.sha256 ~key:k_incr d_cd50);
  (* RFC 4231 case 5 specifies a 128-bit truncated output; we verify
     the prefix of the full tag. *)
  let k_0c20 = String.make 20 '\x0c' in
  check_hex "hmac-sha1 rfc2202-5" "4c1a03424b55e07fe7f27be1d58bb9324a9a5a04"
    (Hmac.sha1 ~key:k_0c20 "Test With Truncation");
  check_hex "hmac-sha256 rfc4231-5 (truncated)" "a3b6167473100ee06e0c796c2955552b"
    (String.sub (Hmac.sha256 ~key:k_0c20 "Test With Truncation") 0 16);
  let k_aa80 = String.make 80 '\xaa' in
  check_hex "hmac-sha1 rfc2202-6" "aa4ae5e15272d00e95705637ce8a3b55ed402112"
    (Hmac.sha1 ~key:k_aa80 "Test Using Larger Than Block-Size Key - Hash Key First");
  check_hex "hmac-sha1 rfc2202-7" "e8e99d0f45237d786d6bbaa7965c7808bbff1a91"
    (Hmac.sha1 ~key:k_aa80
       "Test Using Larger Than Block-Size Key and Larger Than One Block-Size Data");
  let k_aa131 = String.make 131 '\xaa' in
  check_hex "hmac-sha256 rfc4231-7"
    "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"
    (Hmac.sha256 ~key:k_aa131
       "This is a test using a larger than block-size key and a larger than \
        block-size data. The key needs to be hashed before being used by the \
        HMAC algorithm.")

let test_hmac_equal () =
  Alcotest.(check bool) "equal" true (Hmac.equal "abcd" "abcd");
  Alcotest.(check bool) "different" false (Hmac.equal "abcd" "abce");
  Alcotest.(check bool) "length mismatch" false (Hmac.equal "abcd" "abc")

let test_chacha20_block () =
  (* RFC 8439 section 2.3.2 *)
  let key = Hexcodec.decode "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f" in
  let nonce = Hexcodec.decode "000000090000004a00000000" in
  let ks = Chacha20.block ~key ~nonce ~counter:1 in
  check_hex "keystream block"
    ("10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
    ^ "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e")
    ks

let test_chacha20_encrypt () =
  (* RFC 8439 section 2.4.2 *)
  let key = Hexcodec.decode "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f" in
  let nonce = Hexcodec.decode "000000000000004a00000000" in
  let plaintext =
    "Ladies and Gentlemen of the class of '99: If I could offer you o\
     nly one tip for the future, sunscreen would be it."
  in
  let ct = Chacha20.crypt ~key ~nonce ~counter:1 plaintext in
  check_hex "ciphertext"
    ("6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
    ^ "f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8"
    ^ "07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736"
    ^ "5af90bbf74a35be6b40b8eedf2785e42874d")
    ct;
  Alcotest.(check string) "decrypt inverts" plaintext (Chacha20.crypt ~key ~nonce ~counter:1 ct)

let test_poly1305 () =
  (* RFC 8439 section 2.5.2 *)
  let key = Hexcodec.decode "85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b" in
  let tag = Poly1305.mac ~key "Cryptographic Forum Research Group" in
  check_hex "tag" "a8061dc1305136c6c22b8baf0c0127a9" tag

let test_poly1305_key_gen () =
  (* RFC 8439 section 2.6.2: the one-time Poly1305 key is the first
     32 bytes of the ChaCha20 block at counter 0. *)
  let key = Hexcodec.decode "808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f" in
  let nonce = Hexcodec.decode "000000000001020304050607" in
  check_hex "one-time key"
    "8ad5a08b905f81cc815040274ab29471a833b637e3fd0da508dbb8e2fdd1a646"
    (String.sub (Chacha20.block ~key ~nonce ~counter:0) 0 32)

let test_chacha20_poly1305_aead () =
  (* RFC 8439 section 2.8.2: the full AEAD known answer, composed from
     the primitives exactly as the RFC specifies — one-time key from
     block 0, ciphertext from counter 1, tag over
     aad | pad16 | ct | pad16 | le64(|aad|) | le64(|ct|). *)
  let key = Hexcodec.decode "808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f" in
  let nonce = Hexcodec.decode "070000004041424344454647" in
  let aad = Hexcodec.decode "50515253c0c1c2c3c4c5c6c7" in
  let plaintext =
    "Ladies and Gentlemen of the class of '99: If I could offer you o\
     nly one tip for the future, sunscreen would be it."
  in
  let ct = Chacha20.crypt ~key ~nonce ~counter:1 plaintext in
  check_hex "aead ciphertext"
    ("d31a8d34648e60db7b86afbc53ef7ec2a4aded51296e08fea9e2b5a736ee62d6"
    ^ "3dbea45e8ca9671282fafb69da92728b1a71de0a9e060b2905d6a5b67ecd3b36"
    ^ "92ddbd7f2d778b8c9803aee328091b58fab324e4fad675945585808b4831d7bc"
    ^ "3ff4def08e4b7a9de576d26586cec64b6116")
    ct;
  let otk = String.sub (Chacha20.block ~key ~nonce ~counter:0) 0 32 in
  let pad16 s = String.make ((16 - String.length s mod 16) mod 16) '\x00' in
  let le64 n =
    String.init 8 (fun i -> Char.chr ((n lsr (8 * i)) land 0xff))
  in
  let mac_data =
    aad ^ pad16 aad ^ ct ^ pad16 ct
    ^ le64 (String.length aad)
    ^ le64 (String.length ct)
  in
  check_hex "aead tag" "1ae10b594f09e26a7e902ecbd0600691" (Poly1305.mac ~key:otk mac_data)

let test_drbg_determinism () =
  let a = Drbg.create ~seed:"seed" in
  let b = Drbg.create ~seed:"seed" in
  Alcotest.(check string) "same seed same stream" (Drbg.bytes a 64) (Drbg.bytes b 64);
  let c = Drbg.create ~seed:"other" in
  Alcotest.(check bool) "different seed" false (Drbg.bytes c 64 = Drbg.bytes (Drbg.create ~seed:"seed") 64)

let test_drbg_fork () =
  let parent = Drbg.create ~seed:"seed" in
  let child1 = Drbg.fork parent ~label:"a" in
  let child2 = Drbg.fork parent ~label:"a" in
  (* Parent advanced between forks, so same label still diverges. *)
  Alcotest.(check bool) "children independent" false (Drbg.bytes child1 32 = Drbg.bytes child2 32)

let test_drbg_bounds () =
  let drbg = Drbg.create ~seed:"bounds" in
  for _ = 1 to 200 do
    let v = Drbg.int_below drbg 7 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 7)
  done;
  let n = Bignum.Nat.of_int 1000 in
  for _ = 1 to 100 do
    let v = Drbg.nat_below drbg n in
    Alcotest.(check bool) "nat in range" true (Bignum.Nat.compare v n < 0)
  done

(* DSA tests share one key to amortize parameter generation. *)
let test_key =
  lazy
    (let drbg = Drbg.create ~seed:"test-dsa-key" in
     Dsa.generate_key drbg)

let test_dsa_roundtrip () =
  let key = Lazy.force test_key in
  let drbg = Drbg.create ~seed:"dsa-nonce" in
  let msg = "Authorizer: the administrator" in
  let signature = Dsa.sign ~key drbg msg in
  Alcotest.(check bool) "verifies" true (Dsa.verify ~key:key.Dsa.pub msg signature);
  Alcotest.(check bool) "tampered msg fails" false (Dsa.verify ~key:key.Dsa.pub (msg ^ "x") signature);
  let signature2 = Dsa.sign ~key drbg msg in
  Alcotest.(check bool) "fresh nonce verifies" true (Dsa.verify ~key:key.Dsa.pub msg signature2)

let test_dsa_wrong_key () =
  let key = Lazy.force test_key in
  let drbg = Drbg.create ~seed:"other-key" in
  let other = Dsa.generate_key drbg in
  let signature = Dsa.sign ~key drbg "msg" in
  Alcotest.(check bool) "wrong key rejects" false (Dsa.verify ~key:other.Dsa.pub "msg" signature)

let test_dsa_encoding () =
  let key = Lazy.force test_key in
  let enc = Dsa.pub_encode key.Dsa.pub in
  let dec = Dsa.pub_decode enc in
  Alcotest.(check bool) "pub roundtrip" true (Dsa.pub_equal key.Dsa.pub dec);
  let drbg = Drbg.create ~seed:"sig-enc" in
  let signature = Dsa.sign ~key drbg "hello" in
  let sig2 = Dsa.sig_decode (Dsa.sig_encode signature) in
  Alcotest.(check bool) "sig roundtrip verifies" true (Dsa.verify ~key:key.Dsa.pub "hello" sig2);
  Alcotest.check_raises "garbage rejected" (Invalid_argument "Dsa: truncated component")
    (fun () -> ignore (Dsa.pub_decode "\x00\x09xx"))

let test_dsa_tampered_sig () =
  let key = Lazy.force test_key in
  let drbg = Drbg.create ~seed:"tamper" in
  let signature = Dsa.sign ~key drbg "msg" in
  let bad = { signature with Dsa.r = Bignum.Nat.succ signature.Dsa.r } in
  Alcotest.(check bool) "bumped r fails" false (Dsa.verify ~key:key.Dsa.pub "msg" bad);
  let zero = { Dsa.r = Bignum.Nat.zero; s = signature.Dsa.s } in
  Alcotest.(check bool) "zero r rejected" false (Dsa.verify ~key:key.Dsa.pub "msg" zero)

let test_dsa_fingerprint () =
  let key = Lazy.force test_key in
  let fp = Dsa.fingerprint key.Dsa.pub in
  Alcotest.(check int) "16 hex chars" 16 (String.length fp);
  Alcotest.(check string) "stable" fp (Dsa.fingerprint key.Dsa.pub)

let test_des_vector () =
  (* The classic FIPS worked example. *)
  let key = Hexcodec.decode "133457799bbcdff1" in
  let pt = Hexcodec.decode "0123456789abcdef" in
  let ct = Dcrypto.Des.encrypt_block ~key pt in
  check_hex "des encrypt" "85e813540f0ab405" ct;
  Alcotest.(check string) "des decrypt" (Hexcodec.encode pt)
    (Hexcodec.encode (Dcrypto.Des.decrypt_block ~key ct));
  Alcotest.check_raises "bad key size" (Invalid_argument "Des: key must be 8 bytes") (fun () ->
      ignore (Dcrypto.Des.encrypt_block ~key:"short" pt))

let test_3des_degenerate () =
  (* 3DES with K1 = K2 = K3 is single DES: E(D(E(x))) = E(x). *)
  let k = Hexcodec.decode "133457799bbcdff1" in
  let key24 = k ^ k ^ k in
  let pt = Hexcodec.decode "0123456789abcdef" in
  check_hex "degenerate 3des = des" "85e813540f0ab405"
    (Dcrypto.Des.Triple.encrypt_block ~key:key24 pt)

let test_3des_cbc () =
  let key = String.sub (Sha256.digest "3des key material") 0 24 in
  let iv = String.sub (Sha256.digest "iv") 0 8 in
  let pt = "The quick brown fox jumps over the lazy dog" in
  let ct = Dcrypto.Des.Triple.cbc_encrypt ~key ~iv pt in
  Alcotest.(check bool) "padded to block multiple" true (String.length ct mod 8 = 0);
  Alcotest.(check bool) "strictly longer" true (String.length ct > String.length pt);
  Alcotest.(check string) "roundtrip" pt (Dcrypto.Des.Triple.cbc_decrypt ~key ~iv ct);
  (* Bit flip breaks padding or plaintext, never silently passes both
     blocks through unchanged. *)
  let bad = Bytes.of_string ct in
  Bytes.set bad 3 (Char.chr (Char.code (Bytes.get bad 3) lxor 1));
  (match Dcrypto.Des.Triple.cbc_decrypt ~key ~iv (Bytes.to_string bad) with
  | exception Invalid_argument _ -> ()
  | pt' -> Alcotest.(check bool) "tamper changes plaintext" false (pt' = pt));
  Alcotest.check_raises "bad length" (Invalid_argument "Des.Triple.cbc_decrypt: bad length")
    (fun () -> ignore (Dcrypto.Des.Triple.cbc_decrypt ~key ~iv "12345"))

let prop_3des_cbc_roundtrip =
  QCheck.Test.make ~name:"3des-cbc roundtrip" ~count:50
    (QCheck.make QCheck.Gen.(string_size (int_range 0 200)))
    (fun pt ->
      let key = String.sub (Sha256.digest "k") 0 24 in
      let iv = String.sub (Sha256.digest "i") 0 8 in
      Dcrypto.Des.Triple.cbc_decrypt ~key ~iv (Dcrypto.Des.Triple.cbc_encrypt ~key ~iv pt) = pt)

let test_dh_agreement () =
  let drbg = Drbg.create ~seed:"dh" in
  let sec_a, share_a = Dh.gen drbg in
  let sec_b, share_b = Dh.gen drbg in
  let k_ab = Dh.shared sec_a share_b in
  let k_ba = Dh.shared sec_b share_a in
  Alcotest.(check string) "agreement" (Hexcodec.encode k_ab) (Hexcodec.encode k_ba);
  Alcotest.(check int) "32-byte key" 32 (String.length k_ab);
  Alcotest.check_raises "degenerate share" (Invalid_argument "Dh.shared: peer share out of range")
    (fun () -> ignore (Dh.shared sec_a Bignum.Nat.one))

let prop_chacha_involutive =
  QCheck.Test.make ~name:"chacha crypt . crypt = id" ~count:50
    (QCheck.make QCheck.Gen.(string_size (int_range 0 300)))
    (fun data ->
      let key = Sha256.digest "k" in
      let nonce = String.sub (Sha256.digest "n") 0 12 in
      Chacha20.crypt ~key ~nonce (Chacha20.crypt ~key ~nonce data) = data)

let prop_hmac_distinct =
  QCheck.Test.make ~name:"hmac differs across keys" ~count:50
    (QCheck.make QCheck.Gen.(pair small_string small_string))
    (fun (k, msg) -> Hmac.sha256 ~key:("a" ^ k) msg <> Hmac.sha256 ~key:("b" ^ k) msg)

let prop_sha1_incremental_split =
  QCheck.Test.make ~name:"sha1 split-anywhere" ~count:100
    (QCheck.make QCheck.Gen.(pair (string_size (int_range 0 200)) (int_bound 200)))
    (fun (s, i) ->
      let i = min i (String.length s) in
      let ctx = Sha1.init () in
      Sha1.update ctx (String.sub s 0 i);
      Sha1.update ctx (String.sub s i (String.length s - i));
      Sha1.finalize ctx = Sha1.digest s)

let suite =
  [
    Alcotest.test_case "hexcodec" `Quick test_hexcodec;
    Alcotest.test_case "sha1 vectors" `Quick test_sha1_vectors;
    Alcotest.test_case "sha1 million-a" `Slow test_sha1_million;
    Alcotest.test_case "sha1 incremental" `Quick test_sha1_incremental;
    Alcotest.test_case "sha256 vectors" `Quick test_sha256_vectors;
    Alcotest.test_case "sha256 incremental" `Quick test_sha256_incremental;
    Alcotest.test_case "hmac vectors" `Quick test_hmac_vectors;
    Alcotest.test_case "hmac full rfc2202/4231 kat" `Quick test_hmac_kat_full;
    Alcotest.test_case "hmac constant-time equal" `Quick test_hmac_equal;
    Alcotest.test_case "chacha20 block vector" `Quick test_chacha20_block;
    Alcotest.test_case "chacha20 encrypt vector" `Quick test_chacha20_encrypt;
    Alcotest.test_case "poly1305 vector" `Quick test_poly1305;
    Alcotest.test_case "poly1305 key generation" `Quick test_poly1305_key_gen;
    Alcotest.test_case "chacha20-poly1305 aead rfc8439" `Quick test_chacha20_poly1305_aead;
    Alcotest.test_case "drbg determinism" `Quick test_drbg_determinism;
    Alcotest.test_case "drbg fork" `Quick test_drbg_fork;
    Alcotest.test_case "drbg bounds" `Quick test_drbg_bounds;
    Alcotest.test_case "dsa sign/verify" `Quick test_dsa_roundtrip;
    Alcotest.test_case "dsa wrong key" `Quick test_dsa_wrong_key;
    Alcotest.test_case "dsa encoding" `Quick test_dsa_encoding;
    Alcotest.test_case "dsa tampered signature" `Quick test_dsa_tampered_sig;
    Alcotest.test_case "dsa fingerprint" `Quick test_dsa_fingerprint;
    Alcotest.test_case "dh agreement" `Quick test_dh_agreement;
    Alcotest.test_case "des fips vector" `Quick test_des_vector;
    Alcotest.test_case "3des degenerate = des" `Quick test_3des_degenerate;
    Alcotest.test_case "3des cbc" `Quick test_3des_cbc;
    QCheck_alcotest.to_alcotest prop_3des_cbc_roundtrip;
    QCheck_alcotest.to_alcotest prop_chacha_involutive;
    QCheck_alcotest.to_alcotest prop_hmac_distinct;
    QCheck_alcotest.to_alcotest prop_sha1_incremental_split;
  ]
