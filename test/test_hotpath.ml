(* Hot-path suite: the single-pass encode->seal pipeline and its wire
   guarantees.

   - Golden byte-equality: the arena encoder and the ESP in-place
     seal must emit exactly the bytes the old Buffer/concat pipeline
     did, for every procedure in the call corpus — the refactor is an
     allocation change, never a wire change.
   - XDR canonicality: RFC 4506 pad bytes must be zero on the way in;
     decode->encode round-trips are byte-identical.
   - ESP shape guards: per-cipher length validation runs before any
     slicing, and every such drop lands under [esp.drop.malformed].
   - Decode discipline: byte mutations of valid wire data raise only
     the documented typed errors.
   - The compound procedures (READDIRPLUS, MULTI_READ) round-trip
     over plain NFS and through the cluster's redirect path. *)

module Proto = Nfs.Proto
module Rpc = Oncrpc.Rpc
module Clock = Simnet.Clock
module Stats = Simnet.Stats

(* --- reference encoders ------------------------------------------------ *)

(* The pre-arena pipeline, kept alive here as the golden reference:
   nested Buffer for the credential body, a Buffer for the message,
   string concatenation for the ESP packet. *)

let buf_be32 b v =
  for i = 3 downto 0 do
    Buffer.add_char b (Char.chr ((v lsr (i * 8)) land 0xff))
  done

let str_be32 v = String.init 4 (fun i -> Char.chr ((v lsr ((3 - i) * 8)) land 0xff))

let str_be64 v = String.init 8 (fun i -> Char.chr ((v lsr ((7 - i) * 8)) land 0xff))

let reference_encode_call ~xid ~prog ~vers ~proc ~uid args =
  let cred = Buffer.create 16 in
  buf_be32 cred uid;
  let cred_body = Buffer.contents cred in
  let b = Buffer.create 256 in
  buf_be32 b xid;
  buf_be32 b 0 (* CALL *);
  buf_be32 b 2 (* rpcvers *);
  buf_be32 b prog;
  buf_be32 b vers;
  buf_be32 b proc;
  buf_be32 b 1 (* AUTH_UNIX *);
  buf_be32 b (String.length cred_body);
  Buffer.add_string b cred_body (* 4 bytes: no pad *);
  buf_be32 b 0 (* verf: AUTH_NONE *);
  buf_be32 b 0 (* empty opaque *);
  Buffer.add_string b args;
  Buffer.contents b

let reference_encode_reply ~xid outcome =
  let b = Buffer.create 64 in
  buf_be32 b xid;
  buf_be32 b 1 (* REPLY *);
  buf_be32 b 0 (* MSG_ACCEPTED *);
  buf_be32 b 0 (* verf AUTH_NONE *);
  buf_be32 b 0 (* empty opaque *);
  (match outcome with
  | Ok results ->
    buf_be32 b 0 (* SUCCESS *);
    Buffer.add_string b results
  | Error stat -> buf_be32 b stat);
  Buffer.contents b

let reference_seal sa payload =
  let seq = Ipsec.Sa.next_seq sa in
  let header = str_be32 (Ipsec.Sa.spi sa) ^ str_be64 seq in
  let key = Dcrypto.Secret.reveal (Ipsec.Sa.key sa) in
  let nonce = "\000\000\000\000" ^ str_be64 seq in
  let ciphertext = Dcrypto.Chacha20.crypt ~key ~nonce payload in
  let otk = String.sub (Dcrypto.Chacha20.block ~key ~nonce ~counter:0) 0 32 in
  let tag = Dcrypto.Poly1305.mac ~key:otk (header ^ ciphertext) in
  header ^ ciphertext ^ tag

let mk_sa ?cipher () =
  let clock = Clock.create () in
  let stats = Stats.create () in
  ( Ipsec.Sa.create ~clock ~cost:Simnet.Cost.default ~stats ~spi:7 ?cipher
      ~key:(String.make 32 'k') (),
    stats )

(* Representative pre-marshalled args for every NFS procedure plus
   the mount and compound extensions: the corpus the byte-equality
   tests sweep. Contents only need to be plausible bytes — the frame
   around them is what is under test. *)
let call_corpus =
  let e = Xdr.Enc.create () in
  Proto.fh_encode e { Proto.ino = 2; gen = 7 };
  let fh_bytes = Xdr.Enc.to_string e in
  let str s =
    let e = Xdr.Enc.create () in
    Xdr.Enc.string e s;
    Xdr.Enc.to_string e
  in
  List.concat
    [
      [ (Proto.nfs_prog, Proto.nfs_vers, 0, 0, "") (* NULL *) ];
      List.map
        (fun proc -> (Proto.nfs_prog, Proto.nfs_vers, proc, 1000, fh_bytes))
        [ 1; 4; 5; 6; 16; 17; 18; Proto.nfsproc_readdirplus; Proto.nfsproc_multi_read ];
      List.map
        (fun proc -> (Proto.nfs_prog, Proto.nfs_vers, proc, 1000, fh_bytes ^ str "name"))
        [ 2; 9; 10; 14 ];
      [ (Proto.mount_prog, Proto.mount_vers, 1, 0, str "/export") ];
    ]

let test_call_bytes_golden () =
  List.iteri
    (fun i (prog, vers, proc, uid, args) ->
      let xid = 0x1000 + i in
      let want = reference_encode_call ~xid ~prog ~vers ~proc ~uid args in
      Alcotest.(check string)
        (Printf.sprintf "encode_call prog=%d proc=%d" prog proc)
        want
        (Rpc.encode_call ~xid ~prog ~vers ~proc ~uid args);
      let e = Xdr.Enc.create () in
      Rpc.encode_call_into e ~xid ~prog ~vers ~proc ~uid args;
      Alcotest.(check string)
        (Printf.sprintf "encode_call_into prog=%d proc=%d" prog proc)
        want (Xdr.Enc.to_string e))
    call_corpus

let test_reply_bytes_golden () =
  let cases =
    [
      (Ok "some results", 0);
      (Ok "", 0);
      (Error Rpc.Prog_unavail, 1);
      (Error Rpc.Proc_unavail, 3);
      (Error Rpc.Garbage_args, 4);
      (Error (Rpc.System_err "boom"), 5);
    ]
  in
  List.iteri
    (fun i (outcome, stat) ->
      let xid = 0x2000 + i in
      let want =
        reference_encode_reply ~xid
          (match outcome with Ok r -> Ok r | Error _ -> Error stat)
      in
      let e = Xdr.Enc.create () in
      Rpc.encode_reply_into e ~xid outcome;
      Alcotest.(check string)
        (Printf.sprintf "encode_reply_into stat=%d" stat)
        want (Xdr.Enc.to_string e);
      (* And the receiver parses the frame back to the outcome. *)
      match (Rpc.decode_reply want, outcome) with
      | (xid', Ok got), Ok sent ->
        Alcotest.(check int) "reply xid" xid xid';
        Alcotest.(check string) "reply body" sent got
      | (xid', Error _), Error _ -> Alcotest.(check int) "fault xid" xid xid'
      | _ -> Alcotest.fail "reply outcome flipped")
    cases

let test_seal_bytes_golden () =
  (* Same key, same SPI, two fresh SAs: the sequence streams align,
     so packet k from the reference pipeline must equal packet k from
     the arena pipeline — including the sealed RPC frame the fused
     client path emits. *)
  let reference, _ = mk_sa () in
  let arena, _ = mk_sa () in
  let payloads =
    [ ""; "x"; "abc"; String.make 64 'p'; String.make 8192 'q'; String.make 8193 'r' ]
  in
  List.iter
    (fun payload ->
      Alcotest.(check string)
        (Printf.sprintf "sealed %d-byte payload" (String.length payload))
        (reference_seal reference payload)
        (Ipsec.Esp.seal arena payload))
    payloads;
  List.iteri
    (fun i (prog, vers, proc, uid, args) ->
      let xid = 0x3000 + i in
      let want =
        reference_seal reference (reference_encode_call ~xid ~prog ~vers ~proc ~uid args)
      in
      let a = Ipsec.Esp.arena () in
      Rpc.encode_call_into (Ipsec.Esp.arena_enc a) ~xid ~prog ~vers ~proc ~uid args;
      Alcotest.(check string)
        (Printf.sprintf "sealed call prog=%d proc=%d" prog proc)
        want
        (Ipsec.Esp.seal_arena arena a))
    call_corpus;
  (* And the receiver opens what either pipeline sealed. *)
  let tx, _ = mk_sa () in
  let rx, _ = mk_sa () in
  Alcotest.(check string) "opens" "round trip"
    (Ipsec.Esp.open_ rx (Ipsec.Esp.seal tx "round trip"))

(* --- XDR canonicality -------------------------------------------------- *)

let corrupt_pad encoded ~at =
  let b = Bytes.of_string encoded in
  Bytes.set b at '\xff';
  Bytes.to_string b

let expect_decode_error name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Decode_error" name
  | exception Xdr.Decode_error _ -> ()

let test_nonzero_padding_rejected () =
  (* "abcde" as opaque: 4-byte length + 5 bytes + 3 pad bytes. *)
  let e = Xdr.Enc.create () in
  Xdr.Enc.opaque e "abcde";
  let good = Xdr.Enc.to_string e in
  Alcotest.(check int) "padded length" 12 (String.length good);
  Alcotest.(check string) "zero padding decodes" "abcde"
    (Xdr.Dec.opaque (Xdr.Dec.of_string good));
  for at = 9 to 11 do
    expect_decode_error
      (Printf.sprintf "opaque pad byte %d" at)
      (fun () -> Xdr.Dec.opaque (Xdr.Dec.of_string (corrupt_pad good ~at)))
  done;
  (* Same discipline for string and fixed-length opaque decoding. *)
  let e = Xdr.Enc.create () in
  Xdr.Enc.string e "hi";
  let s = Xdr.Enc.to_string e in
  expect_decode_error "string pad byte" (fun () ->
      Xdr.Dec.string (Xdr.Dec.of_string (corrupt_pad s ~at:7)));
  let e = Xdr.Enc.create () in
  Xdr.Enc.opaque_fixed e 6 "fixedA";
  let f = Xdr.Enc.to_string e in
  expect_decode_error "opaque_fixed pad byte" (fun () ->
      Xdr.Dec.opaque_fixed (Xdr.Dec.of_string (corrupt_pad f ~at:7)) 6);
  (* The payload bytes themselves are not the pad: corrupting them
     changes the value but must still decode. *)
  Alcotest.(check string) "payload corruption still decodes" "abcd\xff"
    (Xdr.Dec.opaque (Xdr.Dec.of_string (corrupt_pad good ~at:8)))

let prop_canonical_roundtrip =
  (* decode(encode(v)) = v, and re-encoding the decoded value
     reproduces the input bytes exactly: with zero-padding enforced on
     both sides there is one wire form per value. *)
  QCheck.Test.make ~name:"xdr round-trips are canonical" ~count:300
    (QCheck.make
       QCheck.Gen.(
         quad (int_bound 0xffffff) string_printable (string_size (int_bound 40)) bool))
    (fun (n, s, o, b) ->
      let encode (n, s, o, b) =
        let e = Xdr.Enc.create () in
        Xdr.Enc.uint32 e n;
        Xdr.Enc.string e s;
        Xdr.Enc.opaque e o;
        Xdr.Enc.bool e b;
        Xdr.Enc.to_string e
      in
      let wire = encode (n, s, o, b) in
      let d = Xdr.Dec.of_string wire in
      let n' = Xdr.Dec.uint32 d in
      let s' = Xdr.Dec.string d in
      let o' = Xdr.Dec.opaque d in
      let b' = Xdr.Dec.bool d in
      let v' = (n', s', o', b') in
      Xdr.Dec.expect_end d;
      v' = (n, s, o, b) && String.equal (encode v') wire)

let prop_mutated_xdr_typed_errors =
  (* Flipping any byte of a valid stream decodes to something, or
     fails with Decode_error — pad positions included; nothing else
     may escape. *)
  QCheck.Test.make ~name:"xdr decoders: byte mutations raise only Decode_error"
    ~count:500
    (QCheck.make QCheck.Gen.(triple (int_bound 10_000) (int_bound 255) small_string))
    (fun (pos, byte, s) ->
      let e = Xdr.Enc.create () in
      Xdr.Enc.string e s;
      Xdr.Enc.opaque e "pad me";
      Xdr.Enc.uint32 e 5;
      let wire = Xdr.Enc.to_string e in
      let b = Bytes.of_string wire in
      Bytes.set b (pos mod Bytes.length b) (Char.chr byte);
      let d = Xdr.Dec.of_string (Bytes.to_string b) in
      match
        let _ = Xdr.Dec.string d in
        let _ = Xdr.Dec.opaque d in
        let _ = Xdr.Dec.uint32 d in
        Xdr.Dec.expect_end d
      with
      | () -> true
      | exception Xdr.Decode_error _ -> true)

(* --- ESP length guards ------------------------------------------------- *)

let malformed_count stats = Stats.get stats "esp.drop.malformed"

let expect_esp_error name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Esp_error" name
  | exception Ipsec.Esp.Esp_error _ -> ()

let test_esp_length_guard_chacha () =
  let sa, stats = mk_sa () in
  (* Below header + tag: malformed, counted, before any slicing. *)
  for n = 0 to Ipsec.Esp.overhead - 1 do
    let before = malformed_count stats in
    expect_esp_error
      (Printf.sprintf "chacha len %d" n)
      (fun () -> Ipsec.Esp.open_ sa (String.make n 'x'));
    Alcotest.(check int) (Printf.sprintf "counted at len %d" n) (before + 1)
      (malformed_count stats)
  done;
  (* Exactly header + tag is a well-formed shape (empty payload): it
     proceeds to the SPI check and fails there, not under the
     malformed metric. *)
  let before = malformed_count stats in
  expect_esp_error "chacha minimal garbage" (fun () ->
      Ipsec.Esp.open_ sa (String.make Ipsec.Esp.overhead 'x'));
  Alcotest.(check int) "shape ok, not counted malformed" before (malformed_count stats);
  (* A genuinely sealed empty payload at that exact length opens. *)
  let tx, _ = mk_sa () in
  Alcotest.(check string) "empty payload round-trips" ""
    (Ipsec.Esp.open_ sa (Ipsec.Esp.seal tx ""))

let test_esp_length_guard_tdes () =
  let sa, stats = mk_sa ~cipher:Ipsec.Sa.Tdes_hmac_sha1 () in
  let min_len = 12 + 12 + 8 (* header + tag + one CBC block *) in
  for n = 0 to min_len - 1 do
    let before = malformed_count stats in
    expect_esp_error
      (Printf.sprintf "3des len %d" n)
      (fun () -> Ipsec.Esp.open_ sa (String.make n 'x'));
    Alcotest.(check int) (Printf.sprintf "counted at len %d" n) (before + 1)
      (malformed_count stats)
  done;
  (* Ragged cipher blocks between whole-block lengths. *)
  for extra = 1 to 7 do
    let before = malformed_count stats in
    expect_esp_error
      (Printf.sprintf "3des ragged +%d" extra)
      (fun () -> Ipsec.Esp.open_ sa (String.make (min_len + extra) 'x'));
    Alcotest.(check int) (Printf.sprintf "ragged +%d counted" extra) (before + 1)
      (malformed_count stats)
  done;
  (* Whole-block lengths pass the shape check and die later (SPI),
     leaving the malformed counter alone. *)
  List.iter
    (fun n ->
      let before = malformed_count stats in
      expect_esp_error
        (Printf.sprintf "3des shaped garbage %d" n)
        (fun () -> Ipsec.Esp.open_ sa (String.make n 'x'));
      Alcotest.(check int)
        (Printf.sprintf "len %d not counted malformed" n)
        before (malformed_count stats))
    [ min_len; min_len + 8; min_len + 64 ];
  (* And a real 3DES round trip still works under the guard. *)
  let tx, _ = mk_sa ~cipher:Ipsec.Sa.Tdes_hmac_sha1 () in
  Alcotest.(check string) "3des round-trips" "legacy transform"
    (Ipsec.Esp.open_ sa (Ipsec.Esp.seal tx "legacy transform"))

let prop_esp_tdes_mutations_typed_errors =
  (* The fuzz suite covers the ChaCha transform; same discipline for
     the legacy 3DES one — mutations and truncations of a valid
     packet raise Esp_error only. *)
  QCheck.Test.make ~name:"esp open (3des): mutations raise only Esp_error" ~count:150
    (QCheck.make QCheck.Gen.(triple (int_bound 10_000) (int_bound 255) (int_bound 10_000)))
    (fun (pos, byte, cut) ->
      let tx, _ = mk_sa ~cipher:Ipsec.Sa.Tdes_hmac_sha1 () in
      let rx, _ = mk_sa ~cipher:Ipsec.Sa.Tdes_hmac_sha1 () in
      let packet = Ipsec.Esp.seal tx "the slow venerable transform" in
      let mutated =
        let b = Bytes.of_string packet in
        Bytes.set b (pos mod Bytes.length b) (Char.chr byte);
        Bytes.to_string b
      in
      let truncated = String.sub packet 0 (cut mod String.length packet) in
      let total p =
        match Ipsec.Esp.open_ rx p with
        | _ -> p = packet
        | exception Ipsec.Esp.Esp_error _ -> true
      in
      total mutated && total truncated)

(* --- compound procedures over plain NFS -------------------------------- *)

let deploy () =
  let d = Cfs.Cfs_ne.deploy () in
  let client, root = Cfs.Cfs_ne.connect d () in
  (d, client, root)

let test_readdirplus_roundtrip () =
  let _, client, root = deploy () in
  let dir, _ = Nfs.Client.mkdir client root "plus" Proto.sattr_none in
  for i = 0 to 26 do
    let fh, _ =
      Nfs.Client.create_file client dir (Printf.sprintf "f%02d" i) Proto.sattr_none
    in
    ignore (Nfs.Client.write client fh ~off:0 (String.make (i + 1) 'x'))
  done;
  let plus = Nfs.Client.readdirplus client dir in
  let plain = Nfs.Client.readdir client dir in
  Alcotest.(check (list string)) "same names as readdir" (List.map fst plain)
    (List.map (fun de -> de.Proto.p_name) plus);
  (* Every carried handle and attribute matches what per-op LOOKUP +
     GETATTR would have fetched. *)
  List.iter
    (fun de ->
      if de.Proto.p_name <> "." && de.Proto.p_name <> ".." then begin
        let fh, attr = Nfs.Client.lookup client dir de.Proto.p_name in
        Alcotest.(check int) (de.Proto.p_name ^ ": ino") fh.Proto.ino de.Proto.p_fh.Proto.ino;
        Alcotest.(check int) (de.Proto.p_name ^ ": gen") fh.Proto.gen de.Proto.p_fh.Proto.gen;
        Alcotest.(check int) (de.Proto.p_name ^ ": size") attr.Proto.size
          de.Proto.p_attr.Proto.size
      end)
    plus

let test_multi_read_roundtrip () =
  let _, client, root = deploy () in
  let fh, _ = Nfs.Client.create_file client root "blob" Proto.sattr_none in
  let data = String.init 30_000 (fun i -> Char.chr (i mod 251)) in
  Nfs.Client.write_all client fh data;
  let segs = [ (0, 8192); (8192, 8192); (25_000, 8192); (29_990, 100) ] in
  let attr, datas = Nfs.Client.multi_read client fh segs in
  Alcotest.(check int) "attr carried" (String.length data) attr.Proto.size;
  List.iter2
    (fun (off, count) got ->
      let _, want = Nfs.Client.read client fh ~off ~count in
      Alcotest.(check string) (Printf.sprintf "segment @%d" off) want got)
    segs datas;
  (* read_whole over MULTI_READ equals the per-op page loop. *)
  Alcotest.(check bool) "read_whole equals read_all" true
    (Nfs.Client.read_whole client fh ~size:(String.length data) = Nfs.Client.read_all client fh);
  (* Client-side segment validation. *)
  (match Nfs.Client.multi_read client fh [] with
  | _ -> Alcotest.fail "empty segment list accepted"
  | exception Invalid_argument _ -> ());
  let nine = List.init 9 (fun i -> (i * 8, 8)) in
  (match Nfs.Client.multi_read client fh nine with
  | _ -> Alcotest.fail "9 segments accepted"
  | exception Invalid_argument _ -> ())

let test_multi_read_server_decode_discipline () =
  (* A hand-built MULTI_READ with a hostile segment count must bounce
     off the decode discipline as a Garbage_args reply, and the server
     must stay usable. *)
  let d, client, root = deploy () in
  let fh, _ = Nfs.Client.create_file client root "victim" Proto.sattr_none in
  ignore (Nfs.Client.write client fh ~off:0 "payload");
  let rpc = Rpc.connect ~link:d.Cfs.Cfs_ne.link d.Cfs.Cfs_ne.rpc in
  let attempt nsegs =
    let e = Xdr.Enc.create () in
    Proto.fh_encode e fh;
    Xdr.Enc.uint32 e nsegs;
    for _ = 1 to min nsegs 64 do
      Xdr.Enc.uint32 e 0;
      Xdr.Enc.uint32 e 8
    done;
    match
      Rpc.call rpc ~prog:Proto.nfs_prog ~vers:Proto.nfs_vers
        ~proc:Proto.nfsproc_multi_read (Xdr.Enc.to_string e)
    with
    | _ -> Alcotest.failf "segment count %d accepted" nsegs
    | exception Rpc.Rpc_error _ -> ()
    | exception Xdr.Decode_error _ -> ()
  in
  attempt 0;
  attempt 9;
  attempt 0xffffff;
  Alcotest.(check string) "server alive" "payload"
    (snd (Nfs.Client.read client fh ~off:0 ~count:100))

(* --- compounds through the cluster redirect path ----------------------- *)

let quoted p = Printf.sprintf "\"%s\"" p

let root_conditions fh value =
  Printf.sprintf "(app_domain == \"DisCFS\") && (HANDLE == \"%d\") -> \"%s\";" fh.Proto.ino
    value

let test_cluster_compounds_redirect () =
  let module Cluster = Discfs.Cluster in
  let module CC = Discfs.Cluster_client in
  let module Shard_map = Discfs.Shard_map in
  let c, ccs = Discfs.Deploy.make_cluster ~servers:3 ~clients:1 ~seed:"hotpath-compound" () in
  let cc = List.hd ccs in
  let cred =
    Cluster.admin_issue c
      ~licensees:(quoted (CC.principal cc))
      ~conditions:(root_conditions (CC.root cc) "RWX")
      ()
  in
  (match CC.submit_credential cc cred with Ok _ -> () | Error e -> Alcotest.fail e);
  let root = CC.root cc in
  let dir, _, _ = CC.mkdir cc ~dir:root "compound" () in
  let data = String.init 20_000 (fun i -> Char.chr ((i * 7) mod 251)) in
  let fh, _, _ = CC.create cc ~dir "big.dat" () in
  CC.write_all cc fh data;
  ignore (CC.create cc ~dir "small.dat" ());
  (* READDIRPLUS routes like metadata: any frontend serves it. *)
  let plus = CC.readdirplus cc dir in
  Alcotest.(check (list string)) "cluster readdirplus names" [ "."; ".."; "big.dat"; "small.dat" ]
    (List.map (fun de -> de.Proto.p_name) plus);
  (* MULTI_READ routes like READ. Reshard the file's shard so the
     client's cached map goes stale: the compound must be bounced
     with a signed redirect and still return the right bytes. *)
  let stats = Cluster.stats c in
  let map = Cluster.map c in
  let shard = Shard_map.shard_of map ~ino:fh.Proto.ino in
  let old_owner = Shard_map.owner map ~ino:fh.Proto.ino in
  Cluster.reshard c ~shard ~owner:((old_owner + 1) mod Cluster.nservers c);
  let followed_before = Stats.get stats "redirect.followed" in
  let _, datas = CC.multi_read cc fh [ (0, 8192); (8192, 8192); (16_384, 8192) ] in
  Alcotest.(check string) "multi_read across redirect" data (String.concat "" datas);
  Alcotest.(check bool) "redirect followed" true
    (Stats.get stats "redirect.followed" > followed_before);
  Alcotest.(check int) "no bad signatures" 0 (Stats.get stats "redirect.bad_sig");
  Alcotest.(check string) "read_whole via compound" data
    (CC.read_whole cc fh ~size:(String.length data))

let suite =
  [
    Alcotest.test_case "golden: call frames byte-identical" `Quick test_call_bytes_golden;
    Alcotest.test_case "golden: reply frames byte-identical" `Quick test_reply_bytes_golden;
    Alcotest.test_case "golden: arena seal byte-identical" `Quick test_seal_bytes_golden;
    Alcotest.test_case "xdr: non-zero padding rejected" `Quick test_nonzero_padding_rejected;
    QCheck_alcotest.to_alcotest prop_canonical_roundtrip;
    QCheck_alcotest.to_alcotest prop_mutated_xdr_typed_errors;
    Alcotest.test_case "esp: chacha length guard" `Quick test_esp_length_guard_chacha;
    Alcotest.test_case "esp: 3des length guard" `Quick test_esp_length_guard_tdes;
    QCheck_alcotest.to_alcotest prop_esp_tdes_mutations_typed_errors;
    Alcotest.test_case "readdirplus round trip" `Quick test_readdirplus_roundtrip;
    Alcotest.test_case "multi_read round trip" `Quick test_multi_read_roundtrip;
    Alcotest.test_case "multi_read decode discipline" `Quick
      test_multi_read_server_decode_discipline;
    Alcotest.test_case "cluster compounds follow redirects" `Quick
      test_cluster_compounds_redirect;
  ]
